//! Threshold-driven elasticity policy (§3.4), extended with a heat-skew
//! trigger.
//!
//! "The master checks the incoming performance data to predefined
//! thresholds — with both upper and lower bounds. If an overloaded
//! component is detected, it will decide where to distribute data and
//! whether to power on additional nodes [...] Similarly, underutilized
//! nodes trigger a scale-in protocol." The CPU ceiling is 80 %.
//!
//! The paper rebalances on load *imbalance*, not just saturation: beyond
//! the CPU bounds, the policy watches [`ClusterView::heat_skew`] and
//! emits a [`Decision::Rebalance`] — data moves between the *existing*
//! active nodes, no node powered on or off — when one node carries a
//! disproportionate share of the access heat for a patience window.
//! Scale-in picks the **coldest** drainable node (its segments are the
//! cheapest to relocate), not the highest-numbered one.

use wattdb_common::{HelperPolicyConfig, NodeId, SegmentId};
use wattdb_energy::NodeState;
use wattdb_planner::Planner;
use wattdb_sim::Sim;

use crate::cluster::{ClusterRc, Scheme};
use crate::heat;
use crate::migration::{
    attach_helper_plan, detach_named_helpers, nodes_in_flight, rebalancing, start_rebalance,
    start_rebalance_planned, SegmentMove,
};
use crate::monitor::ClusterView;

/// Policy thresholds.
#[derive(Debug, Clone, Copy)]
pub struct PolicyConfig {
    /// Scale out when an active node's CPU exceeds this (paper: 0.8).
    pub cpu_high: f64,
    /// Scale in when all active nodes sit below this.
    pub cpu_low: f64,
    /// Consecutive breaching windows before acting (hysteresis). Shared
    /// by the CPU triggers and the heat-skew trigger.
    pub patience: u32,
    /// Fraction of the hot node's data to offload (legacy
    /// [`Planner::Fraction`] only).
    pub move_fraction: f64,
    /// Which planner turns decisions into segment moves.
    pub planner: Planner,
    /// Allowed per-node overshoot above mean heat before the heat-aware
    /// planner stops shedding (see [`wattdb_planner::PlanConfig::tolerance`]).
    pub heat_tolerance: f64,
    /// Heat-skew ratio ([`ClusterView::heat_skew`]: hottest active node's
    /// heat over the mean) that arms the skew trigger. Values ≤ 0 disable
    /// the trigger entirely; it is also inert unless `planner` is
    /// [`Planner::HeatAware`] (skew decisions are heat-planned segment
    /// moves). The skew must stay armed for `patience` windows before a
    /// [`Decision::Rebalance`] fires.
    pub skew_threshold: f64,
    /// Hysteresis: an armed skew streak only resets once the skew falls
    /// below `skew_threshold × skew_rearm` (a value in `(0, 1]`). Skew
    /// hovering right at the threshold neither re-fires endlessly nor
    /// loses its streak.
    pub skew_rearm: f64,
    /// Mean active-node heat below which the skew trigger stays silent:
    /// ratios over near-zero heat are noise, and rebalancing a cooling
    /// cluster that is about to scale in wastes the bytes.
    pub skew_min_heat: f64,
    /// Monitoring windows the skew trigger stays disarmed after firing,
    /// bounding rebalance churn to at most one skew rebalance per
    /// `skew_cooldown + patience` windows.
    pub skew_cooldown: u32,
    /// Helper escalation: when the skew trigger keeps re-firing without
    /// the skew ever subsiding (transient skew — the last rebalance did
    /// not fix it), the policy stops shipping segments and attaches
    /// Fig. 8 helper nodes to the hot sources instead
    /// ([`Decision::AttachHelpers`]). See [`HelperPolicyConfig`].
    pub helper: HelperPolicyConfig,
    /// NIC egress utilization above which a node counts as saturated when
    /// the policy sizes the cluster — so an attached helper drowning in
    /// shipped log traffic and remote buffer reads weighs into the
    /// scale-out signal even though its *CPU* stays modest. Values ≥ 1
    /// disable the NIC signal.
    pub net_high: f64,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        Self {
            cpu_high: 0.8,
            cpu_low: 0.25,
            patience: 3,
            move_fraction: 0.5,
            planner: Planner::HeatAware,
            heat_tolerance: 0.1,
            skew_threshold: 1.5,
            skew_rearm: 0.9,
            skew_min_heat: 1.0,
            skew_cooldown: 3,
            helper: HelperPolicyConfig::default(),
            net_high: 0.9,
        }
    }
}

/// What the policy decided for one monitoring window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Nothing to do.
    Hold,
    /// Spread data from the overloaded sources to fresh targets.
    ScaleOut {
        /// Overloaded nodes to relieve.
        sources: Vec<NodeId>,
        /// Standby nodes to power on.
        targets: Vec<NodeId>,
    },
    /// Consolidate data away from underutilized nodes (drain + power off).
    ScaleIn {
        /// Nodes to drain.
        drain: Vec<NodeId>,
    },
    /// Rebalance heat between the *existing* active nodes — no node
    /// powered on or off. Fired by the heat-skew trigger when one node
    /// hogs the access heat without breaching the CPU ceiling.
    Rebalance {
        /// Nodes carrying more than the mean heat.
        sources: Vec<NodeId>,
        /// Cooler active nodes to receive the surplus.
        targets: Vec<NodeId>,
    },
    /// Attach Fig. 8 helper nodes to the hot sources instead of shipping
    /// segments. Fired when the skew trigger escalates: it kept re-firing
    /// without the skew ever subsiding, so the skew is transient and a
    /// rebalance would chase a hotspot that moves on before the copy
    /// lands. Which helpers (and which of the sources deserve one) is
    /// decided by the helper planner at apply time
    /// ([`crate::heat::plan_helpers`]).
    AttachHelpers {
        /// Nodes carrying more than the mean heat — the planner ranks
        /// these by their net/remote-heavy heat component.
        sources: Vec<NodeId>,
        /// Cooler active nodes — the targets of the [`Decision::Rebalance`]
        /// this fire would otherwise have been, which `apply` falls back
        /// to when the helper plan comes back empty.
        targets: Vec<NodeId>,
    },
    /// Detach the currently attached helpers: the skew they answered has
    /// subsided (fallen below the rearm band, or the cluster cooled below
    /// the heat floor). May name a *subset* of the attached helpers when
    /// only some sources subsided (see
    /// [`ElasticityPolicy::evaluate_with_pairs`]).
    DetachHelpers {
        /// Helpers attached at decision time.
        helpers: Vec<NodeId>,
    },
    /// Fail over a dead node: promote the most-caught-up follower of
    /// every segment it led, re-cover the key space, and schedule
    /// re-replication ([`crate::failover`]). Fired by the autopilot the
    /// window it notices a failed node still referenced in the replica
    /// map; outranks every other decision and applies even while a
    /// rebalance is in flight.
    Promote {
        /// The failed node.
        failed: NodeId,
        /// Segments the dead node led at decision time, in id order.
        orphaned: Vec<SegmentId>,
    },
}

/// The signal vector frozen at the top of every
/// [`ElasticityPolicy::evaluate`] call, right after the skew trigger
/// ticked: the skew ratio and mean heat the branches acted on, the armed
/// skew streak *including* this window, cooldown and escalation state,
/// and the CPU streak counters as of the previous window (this window's
/// breach, if any, increments them after the freeze). The telemetry
/// timeline records this with every decision — `Hold` included — so
/// `explain()` can say *why* nothing happened.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PolicySignals {
    /// Heat-skew ratio over data-serving actives (helpers excluded).
    pub skew: f64,
    /// Mean active heat the skew was computed against.
    pub mean_heat: f64,
    /// Armed skew streak including this window.
    pub skew_streak: u32,
    /// Skew cooldown windows still to serve.
    pub cooldown_left: u32,
    /// Decisive skew fires since the last subsidence.
    pub skew_fires: u32,
    /// Whether this window's skew read as subsided.
    pub subsided: bool,
    /// Consecutive hot windows before this one.
    pub high_streak: u32,
    /// Consecutive all-low windows before this one.
    pub low_streak: u32,
}

/// Stateful policy evaluated once per monitoring window.
#[derive(Debug)]
pub struct ElasticityPolicy {
    cfg: PolicyConfig,
    high_streak: u32,
    low_streak: u32,
    skew_streak: u32,
    skew_cooldown_left: u32,
    /// Consecutive skew fires with no subsidence in between — the
    /// escalation signal: rebalances that never make the skew fall back
    /// below the rearm band are chasing a transient hotspot.
    skew_fires: u32,
    /// Whether this window's skew had subsided (set by `tick_skew`;
    /// always false while the trigger is inert): the signal the helper
    /// detach branch reuses, so detach and streak/escalation reset can
    /// never disagree on what "subsided" means.
    subsided_now: bool,
    /// Consecutive windows each helped *source* has spent below the
    /// per-source rearm band ([`ElasticityPolicy::evaluate_with_pairs`]):
    /// a source's helper is only released once its streak outlasts
    /// `skew_cooldown`, so a flapping hotspot that cools for a couple of
    /// windows keeps its helper instead of churning through
    /// detach/re-attach cycles.
    cool_streaks: std::collections::BTreeMap<NodeId, u32>,
    /// Signal vector frozen by the most recent `evaluate` call.
    signals: PolicySignals,
}

impl ElasticityPolicy {
    /// Policy with the given thresholds.
    pub fn new(cfg: PolicyConfig) -> Self {
        Self {
            cfg,
            high_streak: 0,
            low_streak: 0,
            skew_streak: 0,
            skew_cooldown_left: 0,
            skew_fires: 0,
            subsided_now: false,
            cool_streaks: std::collections::BTreeMap::new(),
            signals: PolicySignals::default(),
        }
    }

    /// The signal vector the most recent [`ElasticityPolicy::evaluate`]
    /// call acted on (see [`PolicySignals`] for freeze semantics).
    pub fn signals(&self) -> PolicySignals {
        self.signals
    }

    /// Evaluate one monitoring view. `standby` lists nodes available to
    /// power on; `active_with_data` the nodes currently serving;
    /// `rebalancing` whether a migration is already in flight (a skew
    /// fire would only be deferred, so the trigger stays armed instead of
    /// burning its streak and cooldown on a decision nobody can act on);
    /// `helpers` the helper nodes the *policy itself* attached (callers
    /// must not include a scripted `rebalance_with_helpers` set — those
    /// belong to the migration engine and detach with its completion) —
    /// while any are, the skew trigger holds its fire (the helpers *are*
    /// the response in force) and the policy instead watches for
    /// subsidence to emit [`Decision::DetachHelpers`]. Attached helpers
    /// are excluded from the skew signals themselves: they are active
    /// nodes holding no heat, and counting them would inflate the ratio
    /// enough to mask every subsidence (see `skew_signals`).
    ///
    /// Precedence: CPU saturation (scale-out) beats everything — an
    /// overloaded cluster needs more hardware, not reshuffling. A
    /// cluster-wide idle spell (scale-in) beats the skew trigger —
    /// rebalancing nodes that are about to be drained ships bytes twice.
    /// Only then does heat skew get a say.
    pub fn evaluate(
        &mut self,
        view: &ClusterView,
        standby: &[NodeId],
        active_with_data: &[NodeId],
        rebalancing: bool,
        helpers: &[NodeId],
    ) -> Decision {
        // The skew machinery ticks every window, whichever branch ends up
        // deciding: streak, hysteresis band, and cooldown must never go
        // stale just because the cluster spent a stretch in the all-low or
        // overloaded regime.
        let skew_ready = self.tick_skew(view, active_with_data, helpers);
        // Freeze the signal vector the branches below act on: the
        // telemetry timeline attaches it to this window's decision.
        let (skew, mean_heat) = skew_signals(view, helpers);
        self.signals = PolicySignals {
            skew,
            mean_heat,
            skew_streak: self.skew_streak,
            cooldown_left: self.skew_cooldown_left,
            skew_fires: self.skew_fires,
            subsided: self.subsided_now,
            high_streak: self.high_streak,
            low_streak: self.low_streak,
        };
        // Attached helpers detach the moment the skew they answered
        // subsides — before any other branch gets a say, so a cooling
        // cluster releases its helpers before it starts scaling in.
        // `subsided_now` comes from the tick above: the *same* predicate
        // that resets the streak and the escalation counter. The caller
        // passes only the helpers the *policy* attached — a scripted
        // Fig. 8 run's set is invisible here (and released by the
        // migration engine on its rebalance's completion), so the
        // decision below can never name a helper the policy doesn't own.
        if !helpers.is_empty() && !rebalancing && self.subsided_now {
            return Decision::DetachHelpers {
                helpers: helpers.to_vec(),
            };
        }
        // A node saturates on CPU *or* on its NIC: an attached helper
        // absorbing log shipping and remote buffer reads loads its
        // interconnect rather than its CPU, and must still count when
        // sizing the cluster. The NIC signal is muted while a rebalance
        // is in flight — bulk segment copies saturate the source's egress
        // by design, and reading that self-inflicted burst as load would
        // demand scale-out (hence more copying) from a cluster that is
        // merely reorganizing itself. Steady-state replica shipping is
        // subtracted for the same reason: a replicated hot-read workload
        // fans its WAL out to followers every window, and counting that
        // egress as workload would let replication self-trigger spurious
        // scale-outs.
        let hot: Vec<NodeId> = view
            .reports
            .iter()
            .filter(|r| {
                let workload_tx = (r.net_tx - r.replica_ship_tx).max(0.0);
                r.active
                    && (r.cpu > self.cfg.cpu_high
                        || (!rebalancing && workload_tx > self.cfg.net_high))
            })
            .map(|r| r.node)
            .collect();
        if !hot.is_empty() {
            // The hot streak counts breaching windows regardless of
            // standby availability: a cluster that has been hot for longer
            // than `patience` acts the moment a standby frees up, instead
            // of restarting its patience from zero.
            self.high_streak += 1;
            self.low_streak = 0;
            if self.high_streak >= self.cfg.patience && !standby.is_empty() {
                self.high_streak = 0;
                let targets: Vec<NodeId> = standby.iter().copied().take(hot.len()).collect();
                return Decision::ScaleOut {
                    sources: hot,
                    targets,
                };
            }
            // No standby (or not patient yet): a skewed cluster can still
            // help itself by spreading heat over its existing nodes.
            return self.fire_skew(view, skew_ready, rebalancing, helpers);
        }
        // Scale-in: every active data node under the low bound and more
        // than one of them (never drain the last node).
        let active: Vec<_> = view.reports.iter().filter(|r| r.active).collect();
        let all_low = !active.is_empty()
            && active.iter().all(|r| r.cpu < self.cfg.cpu_low)
            && active_with_data.len() > 1;
        if all_low {
            self.low_streak += 1;
            self.high_streak = 0;
            if self.low_streak >= self.cfg.patience {
                self.low_streak = 0;
                // Drain the *coldest* data node: its segments are the
                // cheapest to relocate and the survivors inherit the least
                // heat.
                let drain = coldest_drain_target(view, active_with_data)
                    .map(|n| vec![n])
                    .unwrap_or_default();
                if !drain.is_empty() {
                    return Decision::ScaleIn { drain };
                }
            }
            return Decision::Hold;
        }
        self.low_streak = 0;
        self.high_streak = 0;
        self.fire_skew(view, skew_ready, rebalancing, helpers)
    }

    /// [`ElasticityPolicy::evaluate`] with the `(source, helper)` pairing
    /// visible, enabling **partial detach**: when the cluster-wide skew
    /// persists (so the all-or-nothing subsidence detach stays silent)
    /// but an *individual* source has cooled below the rearm band, that
    /// source's helper is released on its own — instead of staying wired
    /// until every source subsides at once. A helper still serving any
    /// hot source stays; a helper whose source vanished from the view
    /// (drained or failed) is released too. Release waits out a
    /// per-source cool streak of `max(skew_cooldown, 1)` windows, so a
    /// hotspot flapping between nodes keeps both helpers wired instead
    /// of churning through detach/re-attach cycles every flip.
    ///
    /// Every other decision delegates to `evaluate` unchanged, so the two
    /// entry points can never disagree on streaks or escalation.
    pub fn evaluate_with_pairs(
        &mut self,
        view: &ClusterView,
        standby: &[NodeId],
        active_with_data: &[NodeId],
        rebalancing: bool,
        pairs: &[(NodeId, NodeId)],
    ) -> Decision {
        let mut helpers: Vec<NodeId> = pairs.iter().map(|&(_, h)| h).collect();
        helpers.sort_unstable();
        helpers.dedup();
        let decision = self.evaluate(view, standby, active_with_data, rebalancing, &helpers);
        if decision != Decision::Hold || helpers.is_empty() || rebalancing {
            return decision;
        }
        let (_, mean_heat) = skew_signals(view, &helpers);
        if mean_heat < self.cfg.skew_min_heat {
            // A cooling cluster is the *global* subsidence case — the
            // delegate above owns it (and just chose to hold).
            return decision;
        }
        // A source has subsided when its own heat sits below the rearm
        // band relative to the mean — the per-node restriction of the
        // cluster-wide predicate in `tick_skew`.
        let band = self.cfg.skew_threshold * self.cfg.skew_rearm.clamp(0.0, 1.0);
        let subsided = |src: NodeId| {
            view.reports
                .iter()
                .find(|r| r.node == src && r.active)
                .map(|r| r.heat < mean_heat * band)
                .unwrap_or(true) // source gone: nothing left to relieve
        };
        // Hysteresis: one cool window is not subsidence — a bimodal flap
        // parks each source below the band for a few windows at a time,
        // and tearing its helper away mid-flap just re-attaches it on the
        // next flip. A source must stay cool for more than `skew_cooldown`
        // consecutive windows (at least one) before its helper lets go —
        // the same horizon that bounds the skew trigger's own churn.
        let mut sources: Vec<NodeId> = pairs.iter().map(|&(src, _)| src).collect();
        sources.sort_unstable();
        sources.dedup();
        self.cool_streaks.retain(|src, _| sources.contains(src));
        for &src in &sources {
            let streak = self.cool_streaks.entry(src).or_insert(0);
            *streak = if subsided(src) { *streak + 1 } else { 0 };
        }
        let need = self.cfg.skew_cooldown.max(1);
        let released = |src: NodeId| self.cool_streaks.get(&src).copied().unwrap_or(0) >= need;
        let keep: Vec<NodeId> = pairs
            .iter()
            .filter(|&&(src, _)| !released(src))
            .map(|&(_, h)| h)
            .collect();
        let mut release: Vec<NodeId> = pairs
            .iter()
            .filter(|&&(src, h)| released(src) && !keep.contains(&h))
            .map(|&(_, h)| h)
            .collect();
        release.sort_unstable();
        release.dedup();
        if release.is_empty() {
            decision
        } else {
            Decision::DetachHelpers { helpers: release }
        }
    }

    /// Advance the heat-skew trigger's state for this window: arm while
    /// the skew ratio exceeds the threshold, hold the streak inside the
    /// hysteresis band (`skew_rearm`), reset below it, and count the
    /// post-fire cooldown down. Returns whether the trigger is ready to
    /// fire (armed this window with `patience` behind it).
    ///
    /// The trigger is inert when disabled — or when the configured
    /// planner is not heat-aware: skew is a heat signal, and firing
    /// decisions the fraction planner cannot execute would churn the
    /// event log forever without moving a byte.
    fn tick_skew(
        &mut self,
        view: &ClusterView,
        active_with_data: &[NodeId],
        helpers: &[NodeId],
    ) -> bool {
        let cfg = &self.cfg;
        if cfg.skew_threshold <= 0.0 || cfg.planner != Planner::HeatAware {
            self.subsided_now = false;
            return false;
        }
        let (skew, mean_heat) = skew_signals(view, helpers);
        // The single subsidence predicate: below the rearm band, or the
        // cluster cooled below the heat floor. It resets the armed streak
        // and the escalation counter, and drives the helper detach.
        let subsided = skew < cfg.skew_threshold * cfg.skew_rearm.clamp(0.0, 1.0)
            || mean_heat < cfg.skew_min_heat;
        self.subsided_now = subsided;
        // The escalation counter watches for subsidence every window —
        // including cooldown windows, or a skew that briefly healed
        // during the cooldown would still look transient.
        if subsided {
            self.skew_fires = 0;
        }
        if self.skew_cooldown_left > 0 {
            self.skew_cooldown_left -= 1;
            self.skew_streak = 0;
            return false;
        }
        let armed = skew > cfg.skew_threshold
            && mean_heat >= cfg.skew_min_heat
            && active_with_data.len() > 1;
        if armed {
            self.skew_streak += 1;
        } else if subsided {
            self.skew_streak = 0;
        }
        armed && self.skew_streak >= cfg.patience
    }

    /// Emit the skew response when the trigger is ready and no migration
    /// is in flight. Firing consumes the streak and arms the cooldown;
    /// a ready trigger held back by an in-flight rebalance keeps its
    /// streak and fires on the first clear window instead. A ready
    /// trigger with helpers already attached holds too — the helpers are
    /// the response in force, and detach is the only way forward. A fire
    /// that decides nothing (no source above or no target at the mean)
    /// is a plain hold: it consumes neither the streak nor the cooldown,
    /// and never counts towards escalation.
    ///
    /// Each decisive fire without an intervening subsidence counts
    /// towards helper escalation: once `helper.escalation_fires` such
    /// fires accumulate, the decision switches from shipping segments to
    /// attaching Fig. 8 helpers ([`Decision::AttachHelpers`]) — the skew
    /// is transient, and a rebalance would chase it.
    fn fire_skew(
        &mut self,
        view: &ClusterView,
        ready: bool,
        rebalancing: bool,
        helpers: &[NodeId],
    ) -> Decision {
        if !ready || rebalancing || !helpers.is_empty() {
            return Decision::Hold;
        }
        // Sources shed towards cooler actives: above-mean nodes give,
        // the rest receive. Attached helpers are neither — they hold no
        // heat of their own (though none can be attached on this path).
        let active: Vec<_> = view
            .reports
            .iter()
            .filter(|r| r.active && !helpers.contains(&r.node))
            .collect();
        let (_, mean_heat) = skew_signals(view, helpers);
        let sources: Vec<NodeId> = active
            .iter()
            .filter(|r| r.heat > mean_heat)
            .map(|r| r.node)
            .collect();
        let targets: Vec<NodeId> = active
            .iter()
            .filter(|r| r.heat <= mean_heat)
            .map(|r| r.node)
            .collect();
        if sources.is_empty() || targets.is_empty() {
            return Decision::Hold;
        }
        self.skew_streak = 0;
        self.skew_cooldown_left = self.cfg.skew_cooldown;
        self.skew_fires += 1;
        let h = &self.cfg.helper;
        if h.escalation_fires > 0 && h.max_helpers > 0 && self.skew_fires >= h.escalation_fires {
            return Decision::AttachHelpers { sources, targets };
        }
        Decision::Rebalance { sources, targets }
    }

    /// Thresholds in force.
    pub fn config(&self) -> &PolicyConfig {
        &self.cfg
    }
}

/// The heat-skew signals of a view: (skew ratio, mean active heat),
/// computed over the active nodes *serving data* — attached helpers are
/// excluded. A helper is an active node holding (near-)zero heat by
/// construction: counting it would dilute the mean and inflate the skew
/// ratio (two balanced data nodes plus two helpers would read as skew
/// 2.0), so the subsidence predicate could never pass and attached
/// helpers would stay powered forever.
fn skew_signals(view: &ClusterView, helpers: &[NodeId]) -> (f64, f64) {
    let heats: Vec<f64> = view
        .reports
        .iter()
        .filter(|r| r.active && !helpers.contains(&r.node))
        .map(|r| r.heat)
        .collect();
    if heats.is_empty() {
        return (0.0, 0.0);
    }
    let mean_heat = heats.iter().sum::<f64>() / heats.len() as f64;
    let skew = if mean_heat <= 0.0 {
        0.0
    } else {
        heats.iter().copied().fold(0.0, f64::max) / mean_heat
    };
    (skew, mean_heat)
}

/// The coldest drainable node: lowest *effective* load — reported leader
/// heat plus the follower-serving load the node carries, priced as its
/// read fan-out share of the total active heat (a node absorbing the
/// replica read rotation is doing real work its own heat table never
/// sees, and draining it would dump that fan-out back onto the leaders).
/// Ties break by replica-shipping egress, then lowest CPU, then highest
/// id (the legacy drain order). The master (node 0) is never drained
/// while another candidate exists — it cannot be suspended afterwards
/// anyway.
///
/// With distinct per-node signals the choice depends only on the
/// reported *signals*, never on the numbering, so renumbering the nodes
/// renames the answer without changing which physical node drains.
pub fn coldest_drain_target(view: &ClusterView, active_with_data: &[NodeId]) -> Option<NodeId> {
    let mut candidates: Vec<NodeId> = active_with_data
        .iter()
        .copied()
        .filter(|n| *n != NodeId(0))
        .collect();
    if candidates.is_empty() {
        candidates = active_with_data.to_vec();
    }
    let total_heat: f64 = view
        .reports
        .iter()
        .filter(|r| r.active)
        .map(|r| r.heat)
        .sum();
    candidates
        .into_iter()
        .filter_map(|n| {
            view.reports
                .iter()
                .find(|r| r.node == n && r.active)
                .map(|r| {
                    let effective = r.heat + r.replica_fanout * total_heat;
                    (n, effective, r.replica_ship_tx, r.cpu)
                })
        })
        .min_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal))
                .then_with(|| a.3.partial_cmp(&b.3).unwrap_or(std::cmp::Ordering::Equal))
                .then_with(|| b.0.cmp(&a.0))
        })
        .map(|(n, _, _, _)| n)
}

/// Apply a decision to the cluster: power nodes, plan the moves with the
/// configured [`Planner`], and start migrations. Logical repartitioning
/// moves key ranges rather than segments, so it always uses the legacy
/// fraction path regardless of the planner choice.
///
/// Returns the planner that actually produced the started rebalance —
/// `Planner::Fraction` when the heat-aware path fell back (logical
/// scheme, no heat recorded, or an empty plan) — or `None` when nothing
/// was started (including a refused drain: a node that is the source or
/// target of an in-flight migration is never drained).
pub fn apply(
    cl: &ClusterRc,
    sim: &mut Sim,
    decision: &Decision,
    cfg: &PolicyConfig,
) -> Option<Planner> {
    // Failover outranks the one-rebalance-at-a-time rule: a dead node
    // cannot wait out a migration — the migration may itself be wedged on
    // the corpse (its pending moves were dropped by `fail_node`, its
    // in-flight copy voids on completion).
    if let Decision::Promote { failed, .. } = decision {
        crate::failover::handle_failure(cl, sim, *failed);
        return Some(cfg.planner);
    }
    if rebalancing(cl) {
        return None; // one rebalance at a time
    }
    let scheme = cl.borrow().cfg.scheme;
    let heat_aware = cfg.planner == Planner::HeatAware && scheme != Scheme::Logical;
    match decision {
        Decision::Hold => None,
        Decision::ScaleOut { sources, targets } => {
            if targets.is_empty() {
                return None;
            }
            if heat_aware {
                let moves = {
                    let c = cl.borrow();
                    let plan =
                        heat::plan_scale_out(&c, sim.now(), cfg.heat_tolerance, sources, targets);
                    plan.moves.iter().map(SegmentMove::from).collect::<Vec<_>>()
                };
                if !moves.is_empty() {
                    start_rebalance_planned(cl, sim, Planner::HeatAware, moves, targets);
                    return Some(Planner::HeatAware);
                }
                // No heat recorded (or nothing movable improves balance):
                // fall back to the fraction heuristic so the cluster still
                // reacts to the CPU signal.
            }
            start_rebalance(cl, sim, cfg.move_fraction, sources, targets);
            Some(Planner::Fraction)
        }
        Decision::Rebalance { sources, targets } => {
            skew_rebalance(cl, sim, cfg, heat_aware, sources, targets)
        }
        Decision::AttachHelpers { sources, targets } => {
            // Helper choice is a heat decision too: the planner ranks the
            // sources by their net/remote-heavy heat component and pairs
            // the heaviest with standbys / coldest actives.
            if !heat_aware {
                return None;
            }
            let plan = {
                let c = cl.borrow();
                heat::plan_helpers(&c, sim.now(), &cfg.helper, sources)
            };
            // Policy helpers are not scripted: they ride out unrelated
            // migrations and detach only on skew subsidence.
            if attach_helper_plan(cl, sim, &plan, false) {
                return Some(Planner::HeatAware);
            }
            // No helper worth attaching (nobody clears the net-heat floor,
            // or every candidate is entangled): fall back to the rebalance
            // this fire would otherwise have been — same targets, same
            // planning path. The escalation counter only resets on
            // subsidence, so without this fallback a persistent-but-
            // fixable skew would re-escalate into refused attachments
            // forever, never shipping the segments that would fix it.
            skew_rebalance(cl, sim, cfg, heat_aware, sources, targets)
        }
        Decision::DetachHelpers { helpers } => {
            // Release exactly the helpers the decision names — the set
            // the policy attached (possibly a per-source subset). A
            // scripted `rebalance_with_helpers` set attached alongside
            // belongs to the migration engine and must survive a
            // policy-side subsidence detach.
            if detach_named_helpers(cl, helpers, sim.now()).is_empty() {
                None
            } else {
                Some(cfg.planner)
            }
        }
        Decision::Promote { .. } => None, // handled before the guard above
        Decision::ScaleIn { drain } => {
            // Never drain a node still entangled in a migration: until the
            // in-flight moves land, the segment directory understates what
            // the node will hold, and the drain plan would race the mover.
            // (The one-rebalance-at-a-time guard above already blocks this
            // path today; the check keeps the invariant explicit for any
            // future caller that applies decisions mid-flight.)
            let drain_busy = {
                let c = cl.borrow();
                let busy = nodes_in_flight(&c);
                drain.iter().any(|n| busy.contains(n))
            };
            if drain_busy {
                return None;
            }
            // Move *everything* off the drained nodes onto the remaining
            // data nodes, then the migration engine powers nothing off —
            // the caller re-checks emptiness and powers down.
            let targets: Vec<NodeId> = {
                let c = cl.borrow();
                c.active_nodes()
                    .into_iter()
                    .filter(|n| !drain.contains(n) && c.seg_dir.on_node(*n).next().is_some())
                    .collect()
            };
            if targets.is_empty() {
                return None;
            }
            // A drained node hosting follower copies may only go once
            // every copy has a replacement host planned — and never while
            // earlier replacement copies are still on the wire (the map
            // is mid-reconciliation and the coverage check would lie).
            // Refusal, not half-execution: suspending a live follower
            // host silently halves redundancy.
            if drain_blocked_on_replicas(&cl.borrow(), sim.now(), drain) {
                return None;
            }
            // Plan the atomic "move leaders + re-home followers" unit.
            // The re-home half executes regardless of which planner moves
            // the leaders, so even a fraction-path drain keeps the factor.
            let (dp, rehomes) = {
                let c = cl.borrow();
                let dp =
                    heat::plan_drain_replicated(&c, sim.now(), cfg.heat_tolerance, drain, &targets);
                let rehomes = if c.cfg.replication.enabled() {
                    dp.rehomes.clone()
                } else {
                    Vec::new()
                };
                (dp, rehomes)
            };
            let mark_draining = |cl: &ClusterRc| {
                cl.borrow_mut().draining.extend(drain.iter().copied());
            };
            if heat_aware {
                let (moves, complete) = {
                    let c = cl.borrow();
                    // A drain must empty its nodes; anything short of that
                    // (shouldn't happen) falls back to the legacy path.
                    let expected: usize = drain.iter().map(|n| c.seg_dir.on_node(*n).count()).sum();
                    let moves: Vec<SegmentMove> =
                        dp.plan.moves.iter().map(SegmentMove::from).collect();
                    let complete = moves.len() == expected;
                    (moves, complete)
                };
                if complete && !moves.is_empty() {
                    mark_draining(cl);
                    start_rebalance_planned(cl, sim, Planner::HeatAware, moves, &targets);
                    crate::failover::schedule_follower_rehomes(cl, sim, &rehomes);
                    return Some(Planner::HeatAware);
                }
                if complete && moves.is_empty() && !rehomes.is_empty() {
                    // Nothing to move, only follower copies to re-home:
                    // no rebalance starts, the nodes suspend once the
                    // re-homes clear them of replica duty.
                    mark_draining(cl);
                    crate::failover::schedule_follower_rehomes(cl, sim, &rehomes);
                    return Some(Planner::HeatAware);
                }
            }
            mark_draining(cl);
            start_rebalance(cl, sim, 1.0, drain, &targets);
            crate::failover::schedule_follower_rehomes(cl, sim, &rehomes);
            Some(Planner::Fraction)
        }
    }
}

/// True when a replica-aware scale-in of `drain` must be *refused*: the
/// nodes host follower copies and either replacement copies are already
/// on the wire (re-replication in flight — the coverage check would run
/// against a map that is mid-reconciliation) or the planner cannot find
/// a distinct surviving host for every copy. The autopilot reports this
/// refusal with its own Deferred reason so an exported timeline shows
/// *why* the cluster stayed big.
pub fn drain_blocked_on_replicas(
    c: &crate::cluster::Cluster,
    now: wattdb_common::SimTime,
    drain: &[NodeId],
) -> bool {
    if !c.cfg.replication.enabled() {
        return false;
    }
    if !drain.iter().any(|n| !c.replicas.followed_by(*n).is_empty()) {
        return false;
    }
    if c.rereplication_inflight > 0 {
        return true;
    }
    let remaining: Vec<NodeId> = c
        .active_nodes()
        .into_iter()
        .filter(|n| !drain.contains(n))
        .collect();
    !heat::plan_drain_replicated(c, now, 0.0, drain, &remaining).is_fully_covered()
}

/// Plan and start the heat-planned segment rebalance a skew decision
/// calls for (shared by [`Decision::Rebalance`] and the empty-helper-plan
/// fallback of [`Decision::AttachHelpers`]). Skew is a heat signal;
/// without the heat-aware planner — or under logical partitioning, which
/// moves ranges — there is no sound way to act on it, and a plan that
/// finds nothing movable starts nothing.
fn skew_rebalance(
    cl: &ClusterRc,
    sim: &mut Sim,
    cfg: &PolicyConfig,
    heat_aware: bool,
    sources: &[NodeId],
    targets: &[NodeId],
) -> Option<Planner> {
    if !heat_aware || targets.is_empty() {
        return None;
    }
    let moves = {
        let c = cl.borrow();
        let plan = heat::plan_scale_out(&c, sim.now(), cfg.heat_tolerance, sources, targets);
        plan.moves.iter().map(SegmentMove::from).collect::<Vec<_>>()
    };
    if moves.is_empty() {
        return None; // nothing movable improves the balance
    }
    start_rebalance_planned(cl, sim, Planner::HeatAware, moves, targets);
    Some(Planner::HeatAware)
}

/// Power off every active node that holds no segments, runs no helper
/// duty, and hosts no follower copies (post scale-in cleanup — a live
/// follower host is still serving redundancy and reads, and suspending
/// it would silently drop the replication factor). Returns the nodes
/// suspended.
pub fn suspend_empty_nodes(cl: &ClusterRc) -> Vec<NodeId> {
    let mut c = cl.borrow_mut();
    let c = &mut *c;
    let mut off = Vec::new();
    for i in 1..c.nodes.len() {
        // never the master
        let id = NodeId(i as u16);
        let empty = c.seg_dir.on_node(id).next().is_none();
        let is_helper = c.helpers_active.contains(&id);
        let follows = !c.replicas.followed_by(id).is_empty();
        if empty && !is_helper && !follows && c.nodes[i].state == NodeState::Active {
            c.nodes[i].state = NodeState::Standby;
            c.draining.remove(&id);
            off.push(id);
        }
    }
    off
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::NodeReport;
    use wattdb_common::SimTime;

    fn view(cpus: &[(u16, f64)]) -> ClusterView {
        ClusterView {
            reports: cpus
                .iter()
                .map(|&(n, cpu)| NodeReport {
                    node: NodeId(n),
                    at: SimTime::ZERO,
                    cpu,
                    disk: 0.0,
                    net_tx: 0.0,
                    buffer_hit_ratio: 0.9,
                    heat: 0.0,
                    replica_ship_tx: 0.0,
                    replica_fanout: 0.0,
                    active: true,
                })
                .collect(),
        }
    }

    /// A view with explicit per-node heats (all CPUs moderate).
    fn heat_view(heats: &[(u16, f64)]) -> ClusterView {
        ClusterView {
            reports: heats
                .iter()
                .map(|&(n, heat)| NodeReport {
                    node: NodeId(n),
                    at: SimTime::ZERO,
                    cpu: 0.5,
                    disk: 0.0,
                    net_tx: 0.0,
                    buffer_hit_ratio: 0.9,
                    heat,
                    replica_ship_tx: 0.0,
                    replica_fanout: 0.0,
                    active: true,
                })
                .collect(),
        }
    }

    #[test]
    fn scale_out_after_patience() {
        let mut p = ElasticityPolicy::new(PolicyConfig {
            patience: 2,
            ..Default::default()
        });
        let hot = view(&[(0, 0.95), (1, 0.5)]);
        let standby = [NodeId(2), NodeId(3)];
        let data = [NodeId(0), NodeId(1)];
        assert_eq!(
            p.evaluate(&hot, &standby, &data, false, &[]),
            Decision::Hold
        );
        match p.evaluate(&hot, &standby, &data, false, &[]) {
            Decision::ScaleOut { sources, targets } => {
                assert_eq!(sources, vec![NodeId(0)]);
                assert_eq!(targets, vec![NodeId(2)]);
            }
            other => panic!("expected scale-out, got {other:?}"),
        }
    }

    #[test]
    fn no_scale_out_without_standby_nodes() {
        let mut p = ElasticityPolicy::new(PolicyConfig {
            patience: 1,
            ..Default::default()
        });
        let hot = view(&[(0, 0.95)]);
        assert_eq!(
            p.evaluate(&hot, &[], &[NodeId(0)], false, &[]),
            Decision::Hold
        );
    }

    #[test]
    fn hot_streak_survives_standby_scarcity() {
        // The cluster is hot for `patience` windows while no standby
        // exists; the moment one frees up, the policy acts immediately
        // instead of restarting its patience from zero.
        let mut p = ElasticityPolicy::new(PolicyConfig {
            patience: 3,
            ..Default::default()
        });
        let hot = view(&[(0, 0.95)]);
        let data = [NodeId(0)];
        assert_eq!(p.evaluate(&hot, &[], &data, false, &[]), Decision::Hold);
        assert_eq!(p.evaluate(&hot, &[], &data, false, &[]), Decision::Hold);
        assert_eq!(p.evaluate(&hot, &[], &data, false, &[]), Decision::Hold);
        let standby = [NodeId(2)];
        match p.evaluate(&hot, &standby, &data, false, &[]) {
            Decision::ScaleOut { sources, targets } => {
                assert_eq!(sources, vec![NodeId(0)]);
                assert_eq!(targets, vec![NodeId(2)]);
            }
            other => panic!("expected immediate scale-out, got {other:?}"),
        }
    }

    #[test]
    fn scale_in_when_everyone_idles() {
        let mut p = ElasticityPolicy::new(PolicyConfig {
            patience: 2,
            ..Default::default()
        });
        let idle = view(&[(0, 0.05), (1, 0.1)]);
        let data = [NodeId(0), NodeId(1)];
        assert_eq!(p.evaluate(&idle, &[], &data, false, &[]), Decision::Hold);
        match p.evaluate(&idle, &[], &data, false, &[]) {
            Decision::ScaleIn { drain } => assert_eq!(drain, vec![NodeId(1)]),
            other => panic!("expected scale-in, got {other:?}"),
        }
    }

    #[test]
    fn scale_in_drains_the_coldest_node() {
        let mut p = ElasticityPolicy::new(PolicyConfig {
            patience: 1,
            ..Default::default()
        });
        // Node 1 is hot, node 2 cold: node 2 drains even though node 1
        // has the higher number under the legacy rule... and both idle.
        let mut v = heat_view(&[(0, 5.0), (1, 9.0), (2, 1.0)]);
        for r in &mut v.reports {
            r.cpu = 0.05;
        }
        let data = [NodeId(0), NodeId(1), NodeId(2)];
        match p.evaluate(&v, &[], &data, false, &[]) {
            Decision::ScaleIn { drain } => assert_eq!(drain, vec![NodeId(2)]),
            other => panic!("expected coldest-node scale-in, got {other:?}"),
        }
    }

    #[test]
    fn scale_in_never_drains_the_master_while_alternatives_exist() {
        let v = heat_view(&[(0, 0.0), (1, 4.0), (2, 8.0)]);
        // Master (node 0) is the literal coldest; node 1 drains instead.
        let pick = coldest_drain_target(&v, &[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(pick, Some(NodeId(1)));
    }

    #[test]
    fn never_drain_the_last_data_node() {
        let mut p = ElasticityPolicy::new(PolicyConfig {
            patience: 1,
            ..Default::default()
        });
        let idle = view(&[(0, 0.05)]);
        assert_eq!(
            p.evaluate(&idle, &[], &[NodeId(0)], false, &[]),
            Decision::Hold
        );
    }

    #[test]
    fn hysteresis_resets_on_recovery() {
        let mut p = ElasticityPolicy::new(PolicyConfig {
            patience: 3,
            ..Default::default()
        });
        let hot = view(&[(0, 0.95)]);
        let cool = view(&[(0, 0.5)]);
        let standby = [NodeId(2)];
        let data = [NodeId(0)];
        p.evaluate(&hot, &standby, &data, false, &[]);
        p.evaluate(&hot, &standby, &data, false, &[]);
        p.evaluate(&cool, &standby, &data, false, &[]); // streak resets
        assert_eq!(
            p.evaluate(&hot, &standby, &data, false, &[]),
            Decision::Hold
        );
    }

    #[test]
    fn skew_trigger_fires_after_patience() {
        let mut p = ElasticityPolicy::new(PolicyConfig {
            patience: 2,
            skew_threshold: 1.5,
            skew_min_heat: 1.0,
            ..Default::default()
        });
        // Node 0 carries 10 of 12 heat units: skew = 10 / 4 = 2.5.
        let skewed = heat_view(&[(0, 10.0), (1, 1.0), (2, 1.0)]);
        let data = [NodeId(0), NodeId(1), NodeId(2)];
        assert_eq!(p.evaluate(&skewed, &[], &data, false, &[]), Decision::Hold);
        match p.evaluate(&skewed, &[], &data, false, &[]) {
            Decision::Rebalance { sources, targets } => {
                assert_eq!(sources, vec![NodeId(0)]);
                assert_eq!(targets, vec![NodeId(1), NodeId(2)]);
            }
            other => panic!("expected skew rebalance, got {other:?}"),
        }
        // Cooldown: the very next armed windows must not re-fire.
        for _ in 0..p.config().skew_cooldown {
            assert_eq!(p.evaluate(&skewed, &[], &data, false, &[]), Decision::Hold);
        }
    }

    #[test]
    fn skew_trigger_ignores_balanced_and_cold_clusters() {
        let mut p = ElasticityPolicy::new(PolicyConfig {
            patience: 1,
            skew_threshold: 1.5,
            skew_min_heat: 1.0,
            ..Default::default()
        });
        let data = [NodeId(0), NodeId(1)];
        // Balanced: skew 1.0, never fires.
        let balanced = heat_view(&[(0, 6.0), (1, 6.0)]);
        for _ in 0..5 {
            assert_eq!(
                p.evaluate(&balanced, &[], &data, false, &[]),
                Decision::Hold
            );
        }
        // Skewed shape but negligible absolute heat: below the floor.
        let cold = heat_view(&[(0, 0.4), (1, 0.01)]);
        for _ in 0..5 {
            assert_eq!(p.evaluate(&cold, &[], &data, false, &[]), Decision::Hold);
        }
        // Disabled trigger never fires regardless of skew.
        let mut off = ElasticityPolicy::new(PolicyConfig {
            patience: 1,
            skew_threshold: 0.0,
            ..Default::default()
        });
        let skewed = heat_view(&[(0, 100.0), (1, 1.0)]);
        for _ in 0..5 {
            assert_eq!(
                off.evaluate(&skewed, &[], &data, false, &[]),
                Decision::Hold
            );
        }
    }

    #[test]
    fn skew_trigger_is_inert_without_the_heat_aware_planner() {
        // Skew decisions are heat-planned segment moves; under the
        // fraction planner the trigger must never fire (it would be
        // refused by `apply` forever).
        let mut p = ElasticityPolicy::new(PolicyConfig {
            patience: 1,
            planner: Planner::Fraction,
            skew_threshold: 1.5,
            skew_min_heat: 0.1,
            ..Default::default()
        });
        let skewed = heat_view(&[(0, 100.0), (1, 1.0)]);
        let data = [NodeId(0), NodeId(1)];
        for _ in 0..5 {
            assert_eq!(p.evaluate(&skewed, &[], &data, false, &[]), Decision::Hold);
        }
    }

    #[test]
    fn skew_streak_ticks_even_when_another_branch_decides() {
        // Two armed windows, then an all-low stretch during which the
        // skew decays back to balance: the streak must reset (the old
        // code froze it), so a single armed window afterwards cannot
        // fire with patience 3.
        let mut p = ElasticityPolicy::new(PolicyConfig {
            patience: 3,
            cpu_low: 0.25,
            skew_threshold: 1.5,
            skew_min_heat: 0.1,
            skew_cooldown: 0,
            ..Default::default()
        });
        let data = [NodeId(0), NodeId(1), NodeId(2)];
        let armed = heat_view(&[(0, 9.0), (1, 1.0), (2, 2.0)]); // skew 2.25
        let mut idle_balanced = heat_view(&[(0, 4.0), (1, 4.0), (2, 4.0)]); // skew 1.0
        for r in &mut idle_balanced.reports {
            r.cpu = 0.05; // all-low regime: the scale-in branch decides
        }
        assert_eq!(p.evaluate(&armed, &[], &data, false, &[]), Decision::Hold);
        assert_eq!(p.evaluate(&armed, &[], &data, false, &[]), Decision::Hold);
        // All-low window: scale-in path runs, but the balanced skew must
        // still reset the streak.
        p.evaluate(&idle_balanced, &[], &data, false, &[]);
        assert_eq!(
            p.evaluate(&armed, &[], &data, false, &[]),
            Decision::Hold,
            "stale streak must not fire after one armed window"
        );
    }

    #[test]
    fn ready_skew_trigger_waits_out_an_inflight_rebalance() {
        // A ready trigger held back by `rebalancing` keeps its streak and
        // cooldown intact and fires on the first clear window.
        let mut p = ElasticityPolicy::new(PolicyConfig {
            patience: 2,
            skew_threshold: 1.5,
            skew_min_heat: 0.1,
            ..Default::default()
        });
        let skewed = heat_view(&[(0, 10.0), (1, 1.0), (2, 1.0)]);
        let data = [NodeId(0), NodeId(1), NodeId(2)];
        assert_eq!(p.evaluate(&skewed, &[], &data, false, &[]), Decision::Hold);
        // Ready, but a migration is in flight: held, not consumed.
        assert_eq!(p.evaluate(&skewed, &[], &data, true, &[]), Decision::Hold);
        assert_eq!(p.evaluate(&skewed, &[], &data, true, &[]), Decision::Hold);
        match p.evaluate(&skewed, &[], &data, false, &[]) {
            Decision::Rebalance { .. } => {}
            other => panic!("expected immediate fire on the clear window, got {other:?}"),
        }
    }

    #[test]
    fn skew_refire_without_subsidence_escalates_to_helpers() {
        // Default escalation (2 fires): the first skew fire rebalances;
        // when the skew re-fires the moment cooldown + patience allow —
        // without ever subsiding in between, so the rebalance evidently
        // did not fix it — the second fire attaches helpers instead.
        let mut p = ElasticityPolicy::new(PolicyConfig {
            patience: 2,
            skew_threshold: 1.5,
            skew_min_heat: 0.1,
            skew_cooldown: 1,
            ..Default::default()
        });
        assert_eq!(p.config().helper.escalation_fires, 2);
        let skewed = heat_view(&[(0, 10.0), (1, 1.0), (2, 1.0)]);
        let data = [NodeId(0), NodeId(1), NodeId(2)];
        assert_eq!(p.evaluate(&skewed, &[], &data, false, &[]), Decision::Hold);
        match p.evaluate(&skewed, &[], &data, false, &[]) {
            Decision::Rebalance { .. } => {}
            other => panic!("first fire ships segments, got {other:?}"),
        }
        // Cooldown window, then the patience re-accumulates — the skew
        // never subsided.
        assert_eq!(p.evaluate(&skewed, &[], &data, false, &[]), Decision::Hold);
        assert_eq!(p.evaluate(&skewed, &[], &data, false, &[]), Decision::Hold);
        match p.evaluate(&skewed, &[], &data, false, &[]) {
            Decision::AttachHelpers { sources, .. } => assert_eq!(sources, vec![NodeId(0)]),
            other => panic!("transient skew must escalate to helpers, got {other:?}"),
        }
    }

    #[test]
    fn subsidence_between_fires_resets_the_escalation() {
        // The skew subsides after the first rebalance (it worked): the
        // next skew episode starts over with a fresh rebalance, never
        // helpers.
        let mut p = ElasticityPolicy::new(PolicyConfig {
            patience: 1,
            skew_threshold: 1.5,
            skew_min_heat: 0.1,
            skew_cooldown: 1,
            ..Default::default()
        });
        let skewed = heat_view(&[(0, 10.0), (1, 1.0), (2, 1.0)]);
        let balanced = heat_view(&[(0, 4.0), (1, 4.0), (2, 4.0)]);
        let data = [NodeId(0), NodeId(1), NodeId(2)];
        for episode in 0..3 {
            match p.evaluate(&skewed, &[], &data, false, &[]) {
                Decision::Rebalance { .. } => {}
                other => panic!("episode {episode}: expected a rebalance, got {other:?}"),
            }
            // Cooldown window, then the skew subsides for a stretch.
            p.evaluate(&skewed, &[], &data, false, &[]);
            for _ in 0..3 {
                assert_eq!(
                    p.evaluate(&balanced, &[], &data, false, &[]),
                    Decision::Hold
                );
            }
        }
    }

    #[test]
    fn attached_helpers_suppress_the_trigger_and_detach_on_subsidence() {
        let mut p = ElasticityPolicy::new(PolicyConfig {
            patience: 1,
            skew_threshold: 1.5,
            skew_min_heat: 0.1,
            skew_cooldown: 0,
            ..Default::default()
        });
        let skewed = heat_view(&[(0, 10.0), (1, 1.0), (2, 1.0)]);
        let data = [NodeId(0), NodeId(1), NodeId(2)];
        let helpers = [NodeId(3)];
        // Armed and ready, but helpers are the response in force: hold.
        for _ in 0..4 {
            assert_eq!(
                p.evaluate(&skewed, &[], &data, false, &helpers),
                Decision::Hold
            );
        }
        // The skew subsides: the helpers detach.
        let balanced = heat_view(&[(0, 4.0), (1, 4.0), (2, 4.0)]);
        match p.evaluate(&balanced, &[], &data, false, &helpers) {
            Decision::DetachHelpers { helpers: h } => assert_eq!(h, vec![NodeId(3)]),
            other => panic!("expected detach on subsidence, got {other:?}"),
        }
        // No helpers attached: subsidence is a plain hold.
        assert_eq!(
            p.evaluate(&balanced, &[], &data, false, &[]),
            Decision::Hold
        );
    }

    #[test]
    fn helper_zero_heat_never_masks_subsidence() {
        // The attached helpers appear in the view as active zero-heat
        // nodes (powered for the duty, serving no segments). Two balanced
        // data nodes plus two helpers would read skew = max/mean = 2.0 if
        // the helpers counted — above any sane rearm band, so the
        // subsidence predicate would never pass and the helpers would
        // stay powered forever. The signals must ignore them: balanced
        // data nodes release their helpers.
        let mut p = ElasticityPolicy::new(PolicyConfig {
            patience: 1,
            skew_threshold: 1.5,
            skew_min_heat: 0.1,
            skew_cooldown: 0,
            ..Default::default()
        });
        let data = [NodeId(0), NodeId(1)];
        let helpers = [NodeId(2), NodeId(3)];
        let balanced = heat_view(&[(0, 6.0), (1, 6.0), (2, 0.0), (3, 0.0)]);
        match p.evaluate(&balanced, &[], &data, false, &helpers) {
            Decision::DetachHelpers { helpers: h } => {
                assert_eq!(h, vec![NodeId(2), NodeId(3)]);
            }
            other => panic!("balanced data nodes must release the helpers, got {other:?}"),
        }
        // Conversely a *real* data-node skew keeps them attached.
        let skewed = heat_view(&[(0, 10.0), (1, 1.0), (2, 0.0), (3, 0.0)]);
        assert_eq!(
            p.evaluate(&skewed, &[], &data, false, &helpers),
            Decision::Hold,
            "helpers stay while the data-node skew persists"
        );
    }

    #[test]
    fn saturated_helper_nic_counts_towards_scale_out() {
        // Node 2's CPU is modest but its NIC drowns in shipped log
        // traffic and remote buffer reads (the shape a busy helper or
        // replica host presents): the scale-out signal must see it when
        // sizing the cluster.
        let mut p = ElasticityPolicy::new(PolicyConfig {
            patience: 1,
            ..Default::default()
        });
        let mut v = view(&[(0, 0.5), (1, 0.5), (2, 0.3)]);
        v.reports[2].net_tx = 0.95;
        let standby = [NodeId(3)];
        let data = [NodeId(0), NodeId(1)];
        match p.evaluate(&v, &standby, &data, false, &[]) {
            Decision::ScaleOut { sources, .. } => assert_eq!(sources, vec![NodeId(2)]),
            other => panic!("NIC-saturated node must size the cluster up, got {other:?}"),
        }
        // With the NIC signal disabled the same view holds.
        let mut off = ElasticityPolicy::new(PolicyConfig {
            patience: 1,
            net_high: 1.0,
            ..Default::default()
        });
        assert_eq!(
            off.evaluate(&v, &standby, &data, false, &[]),
            Decision::Hold
        );
    }

    #[test]
    fn nic_high_subtracts_replica_shipping_egress() {
        // Node 2's NIC runs hot, but nearly all of it is steady-state WAL
        // fan-out to followers — self-inflicted replication traffic, not
        // workload. The hot-set test must not size the cluster up for it.
        let mut p = ElasticityPolicy::new(PolicyConfig {
            patience: 1,
            ..Default::default()
        });
        let mut v = view(&[(0, 0.5), (1, 0.5), (2, 0.3)]);
        v.reports[2].net_tx = 0.95;
        v.reports[2].replica_ship_tx = 0.9;
        let standby = [NodeId(3)];
        let data = [NodeId(0), NodeId(1)];
        assert_eq!(
            p.evaluate(&v, &standby, &data, false, &[]),
            Decision::Hold,
            "replica shipping egress must not read as workload"
        );
        // The same NIC reading with no shipping behind it is real
        // workload and still fires.
        v.reports[2].replica_ship_tx = 0.0;
        match p.evaluate(&v, &standby, &data, false, &[]) {
            Decision::ScaleOut { sources, .. } => assert_eq!(sources, vec![NodeId(2)]),
            other => panic!("genuine NIC saturation must still scale out, got {other:?}"),
        }
    }

    #[test]
    fn scale_in_avoids_the_replica_fanout_absorber() {
        // Node 1 stores the least heat, but it is serving 80 % of the
        // cluster's routed replica reads: draining it would dump that
        // fan-out back onto the leaders. Node 2 — slightly hotter on
        // stored heat but idle on reads — is the cheaper drain.
        let mut v = heat_view(&[(0, 6.0), (1, 1.0), (2, 2.0)]);
        v.reports[1].replica_fanout = 0.8;
        let pick = coldest_drain_target(&v, &[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(pick, Some(NodeId(2)));
        // With no fan-out, stored heat alone decides: node 1 drains.
        v.reports[1].replica_fanout = 0.0;
        let pick = coldest_drain_target(&v, &[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(pick, Some(NodeId(1)));
    }

    #[test]
    fn partial_detach_releases_only_the_subsided_sources_helper() {
        let mut p = ElasticityPolicy::new(PolicyConfig {
            patience: 1,
            skew_threshold: 1.5,
            skew_min_heat: 0.1,
            skew_cooldown: 0,
            ..Default::default()
        });
        // Sources 0 and 1 each wired to their own helper (3, 4). Source 0
        // stays hot — the cluster-wide skew persists, so the global
        // subsidence detach stays silent — while source 1 cooled below
        // the band: only *its* helper is released.
        let v = heat_view(&[(0, 10.0), (1, 0.2), (2, 2.0), (3, 0.0), (4, 0.0)]);
        let data = [NodeId(0), NodeId(1), NodeId(2)];
        let pairs = [(NodeId(0), NodeId(3)), (NodeId(1), NodeId(4))];
        match p.evaluate_with_pairs(&v, &[], &data, false, &pairs) {
            Decision::DetachHelpers { helpers } => assert_eq!(helpers, vec![NodeId(4)]),
            other => panic!("expected a per-source detach, got {other:?}"),
        }
    }

    #[test]
    fn shared_helper_stays_while_any_of_its_sources_is_hot() {
        let mut p = ElasticityPolicy::new(PolicyConfig {
            patience: 1,
            skew_threshold: 1.5,
            skew_min_heat: 0.1,
            skew_cooldown: 0,
            ..Default::default()
        });
        // One helper serves both sources; source 1 subsided but source 0
        // still burns: the shared helper must not be torn away.
        let v = heat_view(&[(0, 10.0), (1, 0.2), (2, 2.0), (3, 0.0)]);
        let data = [NodeId(0), NodeId(1), NodeId(2)];
        let pairs = [(NodeId(0), NodeId(3)), (NodeId(1), NodeId(3))];
        assert_eq!(
            p.evaluate_with_pairs(&v, &[], &data, false, &pairs),
            Decision::Hold
        );
    }

    #[test]
    fn helpers_first_escalation_never_ships() {
        // escalation_fires = 1: every skew fire attaches helpers — the
        // configuration for workloads known to be transient.
        let mut p = ElasticityPolicy::new(PolicyConfig {
            patience: 1,
            skew_threshold: 1.5,
            skew_min_heat: 0.1,
            skew_cooldown: 0,
            helper: wattdb_common::HelperPolicyConfig {
                escalation_fires: 1,
                ..Default::default()
            },
            ..Default::default()
        });
        let skewed = heat_view(&[(0, 10.0), (1, 1.0), (2, 1.0)]);
        let data = [NodeId(0), NodeId(1), NodeId(2)];
        match p.evaluate(&skewed, &[], &data, false, &[]) {
            Decision::AttachHelpers { sources, .. } => assert_eq!(sources, vec![NodeId(0)]),
            other => panic!("helpers-first config must never rebalance, got {other:?}"),
        }
    }

    #[test]
    fn zero_escalation_fires_disables_helper_escalation() {
        let mut p = ElasticityPolicy::new(PolicyConfig {
            patience: 1,
            skew_threshold: 1.5,
            skew_min_heat: 0.1,
            skew_cooldown: 0,
            helper: wattdb_common::HelperPolicyConfig {
                escalation_fires: 0,
                ..Default::default()
            },
            ..Default::default()
        });
        let skewed = heat_view(&[(0, 10.0), (1, 1.0), (2, 1.0)]);
        let data = [NodeId(0), NodeId(1), NodeId(2)];
        // Fires forever, never escalates: the pre-helper behaviour.
        for _ in 0..5 {
            match p.evaluate(&skewed, &[], &data, false, &[]) {
                Decision::Rebalance { .. } | Decision::Hold => {}
                other => panic!("escalation disabled, got {other:?}"),
            }
        }
    }

    #[test]
    fn skew_streak_survives_the_hysteresis_band() {
        // Threshold 2.0, rearm 0.75: skew dipping to 1.6 (inside the
        // [1.5, 2.0) band) holds the streak; dipping to 1.0 resets it.
        let cfg = PolicyConfig {
            patience: 3,
            skew_threshold: 2.0,
            skew_rearm: 0.75,
            skew_min_heat: 0.1,
            skew_cooldown: 0,
            ..Default::default()
        };
        let data = [NodeId(0), NodeId(1), NodeId(2)];
        // skew = max/mean over 3 nodes: craft exact ratios.
        let above = heat_view(&[(0, 9.0), (1, 1.0), (2, 2.0)]); // 9/4  = 2.25
        let band = heat_view(&[(0, 8.0), (1, 3.0), (2, 4.0)]); // 8/5  = 1.6
        let below = heat_view(&[(0, 4.0), (1, 4.0), (2, 4.0)]); // 1.0

        let mut p = ElasticityPolicy::new(cfg);
        p.evaluate(&above, &[], &data, false, &[]);
        p.evaluate(&above, &[], &data, false, &[]);
        p.evaluate(&band, &[], &data, false, &[]); // streak held, not advanced
        match p.evaluate(&above, &[], &data, false, &[]) {
            Decision::Rebalance { .. } => {}
            other => panic!("band preserved the streak, got {other:?}"),
        }

        let mut p = ElasticityPolicy::new(cfg);
        p.evaluate(&above, &[], &data, false, &[]);
        p.evaluate(&above, &[], &data, false, &[]);
        p.evaluate(&below, &[], &data, false, &[]); // full reset
        assert_eq!(p.evaluate(&above, &[], &data, false, &[]), Decision::Hold);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Replay an arbitrary skew sequence through the trigger and
            /// count the fires: between any two fires there must be at
            /// least `patience + cooldown` windows, nothing fires on an
            /// unarmed window, and nothing fires without `patience` armed
            /// windows behind it.
            #[test]
            fn skew_trigger_never_oscillates(
                skews in proptest::collection::vec(0.5f64..4.0, 1..80),
                patience in 1u32..4,
                cooldown in 0u32..4,
            ) {
                let threshold = 2.0;
                let cfg = PolicyConfig {
                    patience,
                    skew_threshold: threshold,
                    skew_rearm: 0.9,
                    skew_min_heat: 0.1,
                    skew_cooldown: cooldown,
                    ..Default::default()
                };
                let mut p = ElasticityPolicy::new(cfg);
                let data = [NodeId(0), NodeId(1)];
                let mut fires = Vec::new();
                let mut armed_run = 0u32;
                let mut ever_armed = false;
                for (i, &skew) in skews.iter().enumerate() {
                    // Three active nodes whose max/mean tracks the drawn
                    // skew: heats (s, max(0, 3−s), 0) give a realized
                    // skew of max(s, 3−s) for s ≤ 3, saturating at 3.
                    let v = heat_view(&[
                        (0, skew * 100.0),
                        (1, (3.0 - skew).max(0.0) * 100.0),
                        (2, 0.0),
                    ]);
                    let realized = v.heat_skew();
                    let armed_now = realized > threshold;
                    ever_armed |= armed_now;
                    let d = p.evaluate(&v, &[], &data, false, &[]);
                    let fired = matches!(d, Decision::Rebalance { .. });
                    if fired {
                        prop_assert!(armed_now, "fired on an unarmed window {i}");
                        prop_assert!(
                            armed_run + 1 >= patience,
                            "fired at window {i} with only {armed_run} armed predecessors"
                        );
                        fires.push(i);
                    }
                    if armed_now {
                        armed_run += 1;
                    } else if realized < threshold * 0.9 {
                        armed_run = 0;
                    }
                    if fired {
                        armed_run = 0;
                    }
                }
                for w in fires.windows(2) {
                    prop_assert!(
                        w[1] - w[0] >= (patience + cooldown) as usize,
                        "fires {w:?} closer than patience {patience} + cooldown {cooldown}"
                    );
                }
                // A sequence that never arms the trigger never fires.
                if !ever_armed {
                    prop_assert!(fires.is_empty());
                }
            }

            /// Renumbering the nodes must renumber — not change — the
            /// drain choice: the coldest physical node drains no matter
            /// what id it carries.
            #[test]
            fn drain_choice_is_invariant_under_renumbering(
                heats in proptest::collection::vec(0.0f64..100.0, 2..8),
                rot in 1usize..7,
            ) {
                // Distinct heats (perturb by index) on nodes 1..=n; node 0
                // is the master and stays fixed under renumbering.
                let n = heats.len();
                let rows: Vec<(u16, f64)> = std::iter::once((0u16, 1000.0))
                    .chain(
                        heats
                            .iter()
                            .enumerate()
                            .map(|(i, &h)| (i as u16 + 1, h + i as f64 * 1e-3)),
                    )
                    .collect();
                let view_a = heat_view(&rows);
                let data_a: Vec<NodeId> = (0..=n as u16).map(NodeId).collect();
                let pick_a = coldest_drain_target(&view_a, &data_a).unwrap();

                // Renumber the data nodes by rotation: old id i → perm(i).
                let perm = |id: NodeId| {
                    if id == NodeId(0) {
                        NodeId(0)
                    } else {
                        NodeId(((id.raw() as usize - 1 + rot) % n) as u16 + 1)
                    }
                };
                let rows_b: Vec<(u16, f64)> = rows
                    .iter()
                    .map(|&(id, h)| (perm(NodeId(id)).raw(), h))
                    .collect();
                let view_b = heat_view(&rows_b);
                let data_b: Vec<NodeId> = data_a.iter().map(|&n| perm(n)).collect();
                let pick_b = coldest_drain_target(&view_b, &data_b).unwrap();
                prop_assert_eq!(
                    pick_b,
                    perm(pick_a),
                    "renumbering changed the physical drain choice"
                );
            }
        }
    }
}
