//! Experiment metrics: the data series behind Figs. 6–8.

use std::collections::HashMap;

use wattdb_common::{Histogram, SimDuration, SimTime, TimeBuckets};
use wattdb_sim::CostProfile;
use wattdb_tpcc::TxnProfile;

/// Cluster operating phase, for Fig. 7's per-phase breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Steady state, no migration in flight.
    Normal,
    /// Rebalancing in progress.
    Rebalancing,
    /// Rebalancing with helper nodes attached (log shipping + remote
    /// buffer).
    RebalancingImproved,
}

/// Time-series and aggregate metrics for one experiment run.
#[derive(Debug)]
pub struct Metrics {
    /// Completions per bucket (throughput series, Fig. 6a).
    pub qps: TimeBuckets,
    /// Response-time samples per bucket in ms (Fig. 6b).
    pub response: TimeBuckets,
    /// Response-time distribution over the whole run.
    pub response_hist: Histogram,
    /// Per-phase cost attribution (Fig. 7).
    pub profiles: HashMap<Phase, (u64, CostProfile)>,
    /// Transactions completed.
    pub completed: u64,
    /// Completions by TPC-C profile, in modeled transactions (pooled
    /// carriers count their full weight) — the observed transaction mix.
    pub mix: HashMap<TxnProfile, u64>,
    /// Transactions aborted (before any successful retry).
    pub aborted: u64,
    /// Completions since the last power sample (J/query accounting).
    pub completions_since_sample: u64,
    /// Every completed rebalance of the run, in completion order — the
    /// planned-vs-moved heat record experiments read out.
    pub rebalances: Vec<crate::migration::RebalanceReport>,
}

impl Metrics {
    /// Metrics with the given bucket origin/width.
    pub fn new(origin: SimTime, bucket: SimDuration) -> Self {
        Self {
            qps: TimeBuckets::new(origin, bucket),
            response: TimeBuckets::new(origin, bucket),
            response_hist: Histogram::new(),
            profiles: HashMap::new(),
            completed: 0,
            mix: HashMap::new(),
            aborted: 0,
            completions_since_sample: 0,
            rebalances: Vec::new(),
        }
    }

    /// Record one completed transaction.
    pub fn record_completion(
        &mut self,
        now: SimTime,
        response: SimDuration,
        phase: Phase,
        profile: CostProfile,
    ) {
        self.record_completion_weighted(now, response, phase, profile, 1);
    }

    /// Record a carrier completion standing in for `weight` modeled
    /// transactions (pooled client mode): throughput counters scale by
    /// the weight, while the response-time series and the per-phase cost
    /// profile sample the one transaction that actually executed.
    pub fn record_completion_weighted(
        &mut self,
        now: SimTime,
        response: SimDuration,
        phase: Phase,
        profile: CostProfile,
        weight: u64,
    ) {
        self.completed += weight;
        self.completions_since_sample += weight;
        self.qps.record(now, weight as f64);
        self.response.record(now, response.as_millis_f64());
        self.response_hist.record(response);
        let slot = self
            .profiles
            .entry(phase)
            .or_insert((0, CostProfile::new()));
        slot.0 += 1;
        slot.1 += profile;
    }

    /// Record an abort.
    pub fn record_abort(&mut self) {
        self.aborted += 1;
    }

    /// Record a completed rebalance.
    pub fn record_rebalance(&mut self, report: crate::migration::RebalanceReport) {
        self.rebalances.push(report);
    }

    /// Mean per-query cost profile for a phase (Fig. 7 bars).
    pub fn mean_profile(&self, phase: Phase) -> Option<CostProfile> {
        let (n, sum) = self.profiles.get(&phase)?;
        Some(sum.scaled_down(*n))
    }

    /// Take the completion count since the last call (power sampling).
    pub fn take_completions(&mut self) -> u64 {
        std::mem::take(&mut self.completions_since_sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wattdb_sim::CostCategory;

    #[test]
    fn completion_series() {
        let mut m = Metrics::new(SimTime::ZERO, SimDuration::from_secs(10));
        let mut p = CostProfile::new();
        p.record(CostCategory::DiskIo, SimDuration::from_millis(5));
        for s in [1u64, 2, 3, 15] {
            m.record_completion(
                SimTime::from_secs(s),
                SimDuration::from_millis(20),
                Phase::Normal,
                p,
            );
        }
        assert_eq!(m.completed, 4);
        assert_eq!(m.qps.count_at(SimTime::from_secs(5)), 3);
        assert_eq!(m.qps.count_at(SimTime::from_secs(15)), 1);
        assert!((m.response.mean_at(SimTime::from_secs(5)) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn per_phase_profiles() {
        let mut m = Metrics::new(SimTime::ZERO, SimDuration::from_secs(1));
        let mut fast = CostProfile::new();
        fast.record(CostCategory::Cpu, SimDuration::from_millis(1));
        let mut slow = CostProfile::new();
        slow.record(CostCategory::DiskIo, SimDuration::from_millis(30));
        slow.record(CostCategory::Locking, SimDuration::from_millis(10));
        m.record_completion(
            SimTime::ZERO,
            SimDuration::from_millis(2),
            Phase::Normal,
            fast,
        );
        m.record_completion(
            SimTime::ZERO,
            SimDuration::from_millis(45),
            Phase::Rebalancing,
            slow,
        );
        m.record_completion(
            SimTime::ZERO,
            SimDuration::from_millis(45),
            Phase::Rebalancing,
            slow,
        );
        let normal = m.mean_profile(Phase::Normal).unwrap();
        let rebal = m.mean_profile(Phase::Rebalancing).unwrap();
        assert!(rebal.total() > normal.total());
        assert_eq!(
            rebal.get(CostCategory::DiskIo),
            SimDuration::from_millis(30)
        );
        assert!(m.mean_profile(Phase::RebalancingImproved).is_none());
    }

    #[test]
    fn sample_counter_resets() {
        let mut m = Metrics::new(SimTime::ZERO, SimDuration::from_secs(1));
        m.record_completion(
            SimTime::ZERO,
            SimDuration::from_millis(1),
            Phase::Normal,
            CostProfile::new(),
        );
        assert_eq!(m.take_completions(), 1);
        assert_eq!(m.take_completions(), 0);
    }
}
