//! The volcano executor: functional evaluation plus cost traces.
//!
//! Execution is *real* — scans produce tuples, sorts sort, aggregations
//! aggregate — and alongside the data the executor emits a [`CostTrace`]:
//! the ordered hardware demands (CPU slices, page reads, network transfers,
//! sort workspaces) that the simulation replays through the shared node
//! resources to obtain virtual-time latency and contention.
//!
//! Operator modes (§3.3):
//! * **single-record volcano** — every `next()` ships one record; a remote
//!   boundary costs one round trip per record (the Fig. 1 cliff);
//! * **vectorized** — `next()` ships a batch of records, dividing the
//!   per-call overhead by the batch size;
//! * **buffering operator** — a prefetch proxy on the producer's node that
//!   overlaps shipping with production, hiding transfer time behind
//!   upstream work.

use wattdb_common::{CostParams, CostVector, NodeId, SimDuration};

use crate::plan::{AggFunc, PlanNode, Tuple};

/// One hardware demand in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// Compute on the stage's node.
    Cpu {
        /// Core time.
        dur: SimDuration,
    },
    /// Page accesses through the node's buffer pool (misses go to disk).
    PageReads {
        /// Pages touched.
        pages: u64,
    },
    /// Record shipping across the interconnect.
    NetTransfer {
        /// Producer node.
        from: NodeId,
        /// Consumer node.
        to: NodeId,
        /// Payload bytes.
        bytes: u64,
        /// `next()` calls (each pays a round trip when not overlapped).
        calls: u64,
        /// True if a buffering operator prefetches: transfer time hides
        /// behind production and only the residual is charged.
        overlapped: bool,
    },
    /// Blocking sort workspace; the replay spills to disk if the node's
    /// sort memory is oversubscribed.
    SortWorkspace {
        /// Workspace bytes (input size).
        bytes: u64,
        /// Comparison work.
        cpu: SimDuration,
    },
}

/// A stage bound to the node executing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stage {
    /// Executing node.
    pub on: NodeId,
    /// The demand.
    pub kind: StageKind,
}

/// Ordered hardware demands of one query.
#[derive(Debug, Clone, Default)]
pub struct CostTrace {
    /// Stages in execution (pull) order.
    pub stages: Vec<Stage>,
}

impl CostTrace {
    /// Total CPU time across stages (unloaded lower bound).
    pub fn total_cpu(&self) -> SimDuration {
        let us = self
            .stages
            .iter()
            .map(|s| match s.kind {
                StageKind::Cpu { dur } => dur.as_micros(),
                StageKind::SortWorkspace { cpu, .. } => cpu.as_micros(),
                _ => 0,
            })
            .sum();
        SimDuration::from_micros(us)
    }

    /// Total bytes shipped.
    pub fn total_net_bytes(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| match s.kind {
                StageKind::NetTransfer { bytes, .. } => bytes,
                _ => 0,
            })
            .sum()
    }

    /// Total pages read.
    pub fn total_pages(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| match s.kind {
                StageKind::PageReads { pages } => pages,
                _ => 0,
            })
            .sum()
    }

    /// Collapse the trace into the common [`CostVector`] currency — the
    /// bridge between operator-level cost traces and the per-segment
    /// cost-heat accounting (`CostModel` scalarizes this into heat).
    pub fn cost_vector(&self) -> CostVector {
        CostVector {
            cpu: self.total_cpu(),
            pages: self.total_pages(),
            net_bytes: self.total_net_bytes(),
        }
    }
}

/// Execution settings.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Records per `next()` call; 1 = classic volcano single-record mode.
    pub batch_size: u64,
    /// Per-message envelope bytes added to each shipped batch.
    pub message_overhead: u64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self {
            batch_size: 128,
            message_overhead: 64,
        }
    }
}

/// Run a plan: returns the result tuples and the cost trace.
pub fn execute(plan: &PlanNode, params: &CostParams, cfg: &ExecConfig) -> (Vec<Tuple>, CostTrace) {
    let mut trace = CostTrace::default();
    let rows = run(plan, params, cfg, &mut trace, plan.placement(), false);
    (rows, trace)
}

/// Recursive evaluation. `consumer_on` is the node pulling from this
/// operator; `buffered` is true when a Buffer proxy sits between this
/// producer and the consumer.
fn run(
    node: &PlanNode,
    params: &CostParams,
    cfg: &ExecConfig,
    trace: &mut CostTrace,
    consumer_on: NodeId,
    buffered: bool,
) -> Vec<Tuple> {
    match node {
        PlanNode::Scan { source, on } => {
            let rows = source.rows();
            trace.stages.push(Stage {
                on: *on,
                kind: StageKind::PageReads {
                    pages: source.page_count(),
                },
            });
            trace.stages.push(Stage {
                on: *on,
                kind: StageKind::Cpu {
                    dur: params.scan_per_record * rows.len() as u64,
                },
            });
            ship_if_remote(&rows, *on, consumer_on, cfg, params, trace, buffered);
            rows
        }
        PlanNode::Filter {
            input,
            threshold,
            on,
        } => {
            let rows = run(input, params, cfg, trace, *on, false);
            let calls = calls_for(rows.len() as u64, cfg);
            let out: Vec<Tuple> = rows
                .into_iter()
                .filter(|t| t.values.first().copied().unwrap_or(0) >= *threshold)
                .collect();
            trace.stages.push(Stage {
                on: *on,
                kind: StageKind::Cpu {
                    dur: params.project_per_record * out.len() as u64
                        + params.call_overhead * calls,
                },
            });
            ship_if_remote(&out, *on, consumer_on, cfg, params, trace, buffered);
            out
        }
        PlanNode::Project {
            input,
            keep_width,
            on,
        } => {
            let rows = run(input, params, cfg, trace, *on, false);
            let calls = calls_for(rows.len() as u64, cfg);
            let out: Vec<Tuple> = rows
                .into_iter()
                .map(|mut t| {
                    t.width = t.width.min(*keep_width);
                    t.values.truncate(1);
                    t
                })
                .collect();
            trace.stages.push(Stage {
                on: *on,
                kind: StageKind::Cpu {
                    dur: params.project_per_record * out.len() as u64
                        + params.call_overhead * calls,
                },
            });
            ship_if_remote(&out, *on, consumer_on, cfg, params, trace, buffered);
            out
        }
        PlanNode::Sort { input, on } => {
            let mut rows = run(input, params, cfg, trace, *on, false);
            rows.sort_by_key(|t| t.key);
            let n = rows.len() as u64;
            let levels = 64 - n.max(1).leading_zeros() as u64;
            let bytes: u64 = rows.iter().map(|t| t.width as u64).sum();
            trace.stages.push(Stage {
                on: *on,
                kind: StageKind::SortWorkspace {
                    bytes,
                    cpu: params.sort_per_record_level * n * levels,
                },
            });
            ship_if_remote(&rows, *on, consumer_on, cfg, params, trace, buffered);
            rows
        }
        PlanNode::GroupAgg { input, func, on } => {
            let rows = run(input, params, cfg, trace, *on, false);
            let n = rows.len() as u64;
            let mut groups: std::collections::BTreeMap<i64, i64> =
                std::collections::BTreeMap::new();
            for t in &rows {
                let g = t.values.get(1).copied().unwrap_or(0);
                let v = t.values.first().copied().unwrap_or(0);
                let slot = groups.entry(g).or_insert(0);
                match func {
                    AggFunc::Count => *slot += 1,
                    AggFunc::Sum => *slot += v,
                }
            }
            let out: Vec<Tuple> = groups
                .into_iter()
                .enumerate()
                .map(|(i, (g, v))| Tuple {
                    key: wattdb_common::Key(i as u64),
                    values: vec![v, g],
                    width: 16,
                })
                .collect();
            trace.stages.push(Stage {
                on: *on,
                kind: StageKind::Cpu {
                    dur: params.agg_per_record * n,
                },
            });
            ship_if_remote(&out, *on, consumer_on, cfg, params, trace, buffered);
            out
        }
        PlanNode::Buffer { input } => {
            // The proxy sits on the producer's node; it marks the producer's
            // shipment to the consumer as overlapped.
            run(input, params, cfg, trace, consumer_on, true)
        }
        PlanNode::Limit { input, n } => {
            let mut rows = run(input, params, cfg, trace, consumer_on, buffered);
            rows.truncate(*n as usize);
            rows
        }
    }
}

fn calls_for(rows: u64, cfg: &ExecConfig) -> u64 {
    rows.div_ceil(cfg.batch_size.max(1)).max(1)
}

fn ship_if_remote(
    rows: &[Tuple],
    from: NodeId,
    to: NodeId,
    cfg: &ExecConfig,
    params: &CostParams,
    trace: &mut CostTrace,
    overlapped: bool,
) {
    if from == to {
        return;
    }
    let calls = calls_for(rows.len() as u64, cfg);
    let bytes: u64 =
        rows.iter().map(|t| t.width as u64).sum::<u64>() + calls * cfg.message_overhead;
    trace.stages.push(Stage {
        on: from,
        kind: StageKind::NetTransfer {
            from,
            to,
            bytes,
            calls,
            overlapped,
        },
    });
    // Marshalling CPU for both endpoints, charged at the receiver: a
    // separate sender-side stage would convoy behind the sender's queued
    // scans in the FIFO replay and serialize the whole pipeline.
    trace.stages.push(Stage {
        on: to,
        kind: StageKind::Cpu {
            dur: params.call_overhead * calls * 2,
        },
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SyntheticTable;
    use wattdb_common::Key;

    fn params() -> CostParams {
        CostParams::default()
    }

    fn scan(n: u64, on: u16) -> PlanNode {
        PlanNode::Scan {
            source: Box::new(SyntheticTable::new(n, 100, 50)),
            on: NodeId(on),
        }
    }

    #[test]
    fn local_scan_produces_rows_and_cpu() {
        let plan = scan(1000, 1);
        let (rows, trace) = execute(&plan, &params(), &ExecConfig::default());
        assert_eq!(rows.len(), 1000);
        assert_eq!(trace.total_net_bytes(), 0, "local: no shipping");
        assert_eq!(trace.total_pages(), 20);
        assert!(trace.total_cpu() >= SimDuration::from_micros(21 * 1000));
    }

    #[test]
    fn sort_actually_sorts() {
        let plan = PlanNode::Sort {
            input: Box::new(scan(500, 1)),
            on: NodeId(1),
        };
        let (rows, trace) = execute(&plan, &params(), &ExecConfig::default());
        assert!(rows.windows(2).all(|w| w[0].key <= w[1].key));
        assert!(trace
            .stages
            .iter()
            .any(|s| matches!(s.kind, StageKind::SortWorkspace { .. })));
    }

    #[test]
    fn group_agg_counts() {
        let plan = PlanNode::GroupAgg {
            input: Box::new(scan(160, 1)),
            func: AggFunc::Count,
            on: NodeId(1),
        };
        let (rows, _) = execute(&plan, &params(), &ExecConfig::default());
        // 16 groups (key % 16), 10 each.
        assert_eq!(rows.len(), 16);
        assert!(rows.iter().all(|t| t.values[0] == 10));
    }

    #[test]
    fn filter_applies_predicate() {
        let plan = PlanNode::Filter {
            input: Box::new(scan(1000, 1)),
            threshold: 500,
            on: NodeId(1),
        };
        let (rows, _) = execute(&plan, &params(), &ExecConfig::default());
        assert!(!rows.is_empty());
        assert!(rows.len() < 1000);
        assert!(rows.iter().all(|t| t.values[0] >= 500));
    }

    #[test]
    fn remote_single_record_pays_per_call() {
        let remote_single = PlanNode::Project {
            input: Box::new(scan(1000, 1)),
            keep_width: 50,
            on: NodeId(2),
        };
        let cfg1 = ExecConfig {
            batch_size: 1,
            ..Default::default()
        };
        let (_, t1) = execute(&remote_single, &params(), &cfg1);
        let cfg128 = ExecConfig {
            batch_size: 128,
            ..Default::default()
        };
        let (_, t128) = execute(&remote_single, &params(), &cfg128);
        let calls = |t: &CostTrace| {
            t.stages
                .iter()
                .filter_map(|s| match s.kind {
                    StageKind::NetTransfer { calls, .. } => Some(calls),
                    _ => None,
                })
                .sum::<u64>()
        };
        assert_eq!(calls(&t1), 1000);
        assert_eq!(calls(&t128), 8);
        assert!(
            t1.total_net_bytes() > t128.total_net_bytes(),
            "more envelopes"
        );
    }

    #[test]
    fn projection_narrows_shipped_bytes() {
        // Project before shipping: cheaper transfer.
        let narrow_then_ship = PlanNode::Sort {
            input: Box::new(PlanNode::Project {
                input: Box::new(scan(1000, 1)),
                keep_width: 10,
                on: NodeId(1),
            }),
            on: NodeId(2),
        };
        let ship_then_wide = PlanNode::Sort {
            input: Box::new(scan(1000, 1)),
            on: NodeId(2),
        };
        let (_, a) = execute(&narrow_then_ship, &params(), &ExecConfig::default());
        let (_, b) = execute(&ship_then_wide, &params(), &ExecConfig::default());
        assert!(a.total_net_bytes() < b.total_net_bytes());
    }

    #[test]
    fn buffer_marks_transfer_overlapped() {
        let plan = PlanNode::Project {
            input: Box::new(PlanNode::Buffer {
                input: Box::new(scan(1000, 1)),
            }),
            keep_width: 50,
            on: NodeId(2),
        };
        let (rows, trace) = execute(&plan, &params(), &ExecConfig::default());
        assert_eq!(rows.len(), 1000);
        let overlapped = trace.stages.iter().any(|s| {
            matches!(
                s.kind,
                StageKind::NetTransfer {
                    overlapped: true,
                    ..
                }
            )
        });
        assert!(overlapped);
    }

    #[test]
    fn limit_truncates() {
        let plan = PlanNode::Limit {
            input: Box::new(scan(1000, 1)),
            n: 7,
        };
        let (rows, _) = execute(&plan, &params(), &ExecConfig::default());
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].key, Key(0));
    }

    #[test]
    fn trace_stage_order_is_pull_order() {
        let plan = PlanNode::Sort {
            input: Box::new(scan(100, 1)),
            on: NodeId(2),
        };
        let (_, trace) = execute(&plan, &params(), &ExecConfig::default());
        // Scan stages (pages, cpu) precede the transfer, which precedes the
        // sort workspace.
        let kinds: Vec<&str> = trace
            .stages
            .iter()
            .map(|s| match s.kind {
                StageKind::PageReads { .. } => "pages",
                StageKind::Cpu { .. } => "cpu",
                StageKind::NetTransfer { .. } => "net",
                StageKind::SortWorkspace { .. } => "sort",
            })
            .collect();
        let pages_at = kinds.iter().position(|k| *k == "pages").unwrap();
        let net_at = kinds.iter().position(|k| *k == "net").unwrap();
        let sort_at = kinds.iter().position(|k| *k == "sort").unwrap();
        assert!(pages_at < net_at && net_at < sort_at);
    }
}
