//! Query plans and tuples.
//!
//! WattDB generates distributed plans on the master: "Almost every query
//! operator can be placed on remote nodes, excluding data access operators
//! which need local access to the DB records" (§3.3). A [`PlanNode`] tree
//! therefore carries an explicit node placement per operator; crossing a
//! placement boundary inserts record shipping, whose cost depends on the
//! operator mode (single-record vs. vectorized volcano) and on buffering
//! (prefetch) operators.

use wattdb_common::{Key, KeyRange, NodeId};

/// A tuple flowing between operators. `width` is the logical byte width
/// used for network/memory costing (columns are carried compactly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tuple {
    /// Primary key of the source record.
    pub key: Key,
    /// Column values (projected subsets keep a prefix).
    pub values: Vec<i64>,
    /// Logical width in bytes after projections.
    pub width: u32,
}

/// A source of tuples for table scans, decoupled from the storage engine.
/// The cluster layer adapts segments to this; benches use
/// [`SyntheticTable`].
pub trait RowSource {
    /// Total tuples this source will yield.
    fn row_count(&self) -> u64;
    /// Pages the scan will touch (drives buffer/disk costs).
    fn page_count(&self) -> u64;
    /// Produce all tuples, in storage order.
    fn rows(&self) -> Vec<Tuple>;
}

/// A deterministic in-memory table for micro-benchmarks (Fig. 1/2).
#[derive(Debug, Clone)]
pub struct SyntheticTable {
    rows: u64,
    width: u32,
    rows_per_page: u64,
    /// Restrict to a key range (simulates segment pruning).
    range: Option<KeyRange>,
}

impl SyntheticTable {
    /// `rows` tuples of `width` logical bytes, `rows_per_page` per page.
    pub fn new(rows: u64, width: u32, rows_per_page: u64) -> Self {
        assert!(rows_per_page > 0);
        Self {
            rows,
            width,
            rows_per_page,
            range: None,
        }
    }

    /// Limit the scan to `range` (pruned scan).
    pub fn with_range(mut self, range: KeyRange) -> Self {
        self.range = Some(range);
        self
    }
}

impl RowSource for SyntheticTable {
    fn row_count(&self) -> u64 {
        match self.range {
            None => self.rows,
            Some(r) => {
                let lo = r.start.raw().min(self.rows);
                let hi = r.end.raw().min(self.rows);
                hi - lo
            }
        }
    }

    fn page_count(&self) -> u64 {
        self.row_count().div_ceil(self.rows_per_page)
    }

    fn rows(&self) -> Vec<Tuple> {
        let (lo, hi) = match self.range {
            None => (0, self.rows),
            Some(r) => (r.start.raw().min(self.rows), r.end.raw().min(self.rows)),
        };
        (lo..hi)
            .map(|i| Tuple {
                key: Key(i),
                // Deterministic pseudo-columns: value and a group column.
                values: vec![
                    (i as i64).wrapping_mul(2_654_435_761) % 1000,
                    (i % 16) as i64,
                ],
                width: self.width,
            })
            .collect()
    }
}

/// Aggregate function for group-by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Count tuples per group.
    Count,
    /// Sum `values[0]` per group.
    Sum,
}

/// A physical plan node. `on` is the node executing the operator; a child
/// placed elsewhere implies record shipping at the boundary.
pub enum PlanNode {
    /// Leaf: scan a table/partition. Always placed on the data's node.
    Scan {
        /// The data.
        source: Box<dyn RowSource>,
        /// Node holding the data.
        on: NodeId,
    },
    /// Keep tuples whose `values[0] >= threshold` (simple comparable
    /// predicate; enough to model selectivity).
    Filter {
        /// Input operator.
        input: Box<PlanNode>,
        /// Predicate threshold.
        threshold: i64,
        /// Placement.
        on: NodeId,
    },
    /// Narrow tuples to `keep_width` bytes (pipelining operator).
    Project {
        /// Input operator.
        input: Box<PlanNode>,
        /// Output width.
        keep_width: u32,
        /// Placement.
        on: NodeId,
    },
    /// Sort by key (blocking operator; needs workspace memory).
    Sort {
        /// Input operator.
        input: Box<PlanNode>,
        /// Placement.
        on: NodeId,
    },
    /// Hash group-by on `values[1]` (blocking).
    GroupAgg {
        /// Input operator.
        input: Box<PlanNode>,
        /// Aggregate.
        func: AggFunc,
        /// Placement.
        on: NodeId,
    },
    /// Buffering operator: an asynchronous prefetch proxy placed on the
    /// *producer's* node that hides downstream shipping latency (§3.3).
    Buffer {
        /// Input operator.
        input: Box<PlanNode>,
    },
    /// Stop after `n` tuples.
    Limit {
        /// Input operator.
        input: Box<PlanNode>,
        /// Row cap.
        n: u64,
    },
}

impl PlanNode {
    /// The node this operator runs on (Buffer runs with its input; Limit
    /// with its input's consumer side).
    pub fn placement(&self) -> NodeId {
        match self {
            PlanNode::Scan { on, .. }
            | PlanNode::Filter { on, .. }
            | PlanNode::Project { on, .. }
            | PlanNode::Sort { on, .. }
            | PlanNode::GroupAgg { on, .. } => *on,
            PlanNode::Buffer { input } | PlanNode::Limit { input, .. } => input.placement(),
        }
    }

    /// True for operators that must materialize their input before emitting
    /// (candidates for offloading, §3.3).
    pub fn is_blocking(&self) -> bool {
        matches!(self, PlanNode::Sort { .. } | PlanNode::GroupAgg { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_table_shape() {
        let t = SyntheticTable::new(100, 200, 10);
        assert_eq!(t.row_count(), 100);
        assert_eq!(t.page_count(), 10);
        let rows = t.rows();
        assert_eq!(rows.len(), 100);
        assert_eq!(rows[5].key, Key(5));
        assert_eq!(rows[5].width, 200);
    }

    #[test]
    fn pruned_scan() {
        let t = SyntheticTable::new(100, 200, 10).with_range(KeyRange::new(Key(20), Key(50)));
        assert_eq!(t.row_count(), 30);
        assert_eq!(t.page_count(), 3);
        let rows = t.rows();
        assert_eq!(rows.first().unwrap().key, Key(20));
        assert_eq!(rows.last().unwrap().key, Key(49));
    }

    #[test]
    fn placement_traverses_wrappers() {
        let scan = PlanNode::Scan {
            source: Box::new(SyntheticTable::new(10, 8, 10)),
            on: NodeId(3),
        };
        let buffered = PlanNode::Buffer {
            input: Box::new(scan),
        };
        assert_eq!(buffered.placement(), NodeId(3));
        let sort = PlanNode::Sort {
            input: Box::new(buffered),
            on: NodeId(4),
        };
        assert_eq!(sort.placement(), NodeId(4));
        assert!(sort.is_blocking());
    }

    #[test]
    fn rows_deterministic() {
        let a = SyntheticTable::new(50, 8, 10).rows();
        let b = SyntheticTable::new(50, 8, 10).rows();
        assert_eq!(a, b);
    }
}
