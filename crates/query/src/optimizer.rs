//! Operator placement: the heart of §3.3's offloading policy.
//!
//! "The query optimizer tries to put pipelining operators on the same node
//! to minimize latencies. [...] In contrast, blocking operators may be
//! placed on remote nodes to equally distribute query processing. Blocking
//! operators generally consume more resources (CPU, main memory) and are
//! therefore good candidates for offloading."
//!
//! The placer walks a plan bottom-up: pipelining operators are pinned to
//! their child's node; each blocking operator is offloaded to the
//! least-utilized node when the data node is hot, and a buffering operator
//! is inserted at the shipping boundary to hide transfer latency.

use wattdb_common::NodeId;

use crate::plan::PlanNode;

/// Placement policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct PlacementPolicy {
    /// Offload blocking operators when the data node's utilization exceeds
    /// this bound (§3.4 uses 80 % as the CPU ceiling).
    pub offload_threshold: f64,
    /// Insert buffering (prefetch) operators at remote boundaries.
    pub use_buffer_ops: bool,
}

impl Default for PlacementPolicy {
    fn default() -> Self {
        Self {
            offload_threshold: 0.8,
            use_buffer_ops: true,
        }
    }
}

/// Per-node utilization snapshot the placer consults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeLoad {
    /// The node.
    pub node: NodeId,
    /// CPU utilization in \[0,1\].
    pub cpu: f64,
}

/// Re-place a plan in place. Pipelining operators stick with their child;
/// blocking operators are offloaded to the least-loaded *other* node when
/// the child's node is above the threshold and a meaningfully cooler node
/// exists.
pub fn place(plan: &mut PlanNode, loads: &[NodeLoad], policy: &PlacementPolicy) {
    walk(plan, loads, policy);
}

fn load_of(loads: &[NodeLoad], node: NodeId) -> f64 {
    loads
        .iter()
        .find(|l| l.node == node)
        .map(|l| l.cpu)
        .unwrap_or(0.0)
}

fn coolest_other(loads: &[NodeLoad], not: NodeId) -> Option<NodeLoad> {
    loads
        .iter()
        .filter(|l| l.node != not)
        .min_by(|a, b| a.cpu.partial_cmp(&b.cpu).expect("no NaN loads"))
        .copied()
}

fn walk(plan: &mut PlanNode, loads: &[NodeLoad], policy: &PlacementPolicy) {
    match plan {
        PlanNode::Scan { .. } => {}
        PlanNode::Filter { input, on, .. } | PlanNode::Project { input, on, .. } => {
            walk(input, loads, policy);
            // Pipelining: colocate with the child.
            *on = input.placement();
        }
        PlanNode::Sort { input, on } => {
            walk(input, loads, policy);
            *on = place_blocking(input, loads, policy);
        }
        PlanNode::GroupAgg { input, on, .. } => {
            walk(input, loads, policy);
            *on = place_blocking(input, loads, policy);
        }
        PlanNode::Buffer { input } | PlanNode::Limit { input, .. } => {
            walk(input, loads, policy);
        }
    }
}

fn place_blocking(
    input: &mut Box<PlanNode>,
    loads: &[NodeLoad],
    policy: &PlacementPolicy,
) -> NodeId {
    let data_node = input.placement();
    let data_load = load_of(loads, data_node);
    let target = match coolest_other(loads, data_node) {
        Some(c) if data_load > policy.offload_threshold && c.cpu < data_load - 0.1 => c.node,
        _ => data_node,
    };
    if target != data_node && policy.use_buffer_ops {
        insert_buffer(input);
    }
    target
}

/// Wrap `input` in a Buffer proxy unless one is already there.
fn insert_buffer(input: &mut Box<PlanNode>) {
    if matches!(**input, PlanNode::Buffer { .. }) {
        return;
    }
    let dummy = PlanNode::Scan {
        source: Box::new(crate::plan::SyntheticTable::new(0, 1, 1)),
        on: NodeId(0),
    };
    let inner = std::mem::replace(&mut **input, dummy);
    **input = PlanNode::Buffer {
        input: Box::new(inner),
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{AggFunc, SyntheticTable};

    fn scan_on(node: u16) -> PlanNode {
        PlanNode::Scan {
            source: Box::new(SyntheticTable::new(100, 100, 10)),
            on: NodeId(node),
        }
    }

    fn loads(pairs: &[(u16, f64)]) -> Vec<NodeLoad> {
        pairs
            .iter()
            .map(|&(n, cpu)| NodeLoad {
                node: NodeId(n),
                cpu,
            })
            .collect()
    }

    #[test]
    fn pipelining_ops_colocate_with_child() {
        let mut plan = PlanNode::Project {
            input: Box::new(scan_on(3)),
            keep_width: 10,
            on: NodeId(0), // wrong on purpose
        };
        place(
            &mut plan,
            &loads(&[(0, 0.0), (3, 0.95)]),
            &PlacementPolicy::default(),
        );
        assert_eq!(plan.placement(), NodeId(3), "projection follows the data");
    }

    #[test]
    fn blocking_op_offloaded_from_hot_node() {
        let mut plan = PlanNode::Sort {
            input: Box::new(scan_on(1)),
            on: NodeId(1),
        };
        place(
            &mut plan,
            &loads(&[(1, 0.95), (2, 0.10)]),
            &PlacementPolicy::default(),
        );
        assert_eq!(plan.placement(), NodeId(2), "sort offloaded to cool node");
        // And a buffering operator was inserted at the boundary.
        if let PlanNode::Sort { input, .. } = &plan {
            assert!(matches!(**input, PlanNode::Buffer { .. }));
        } else {
            panic!("sort expected");
        }
    }

    #[test]
    fn blocking_op_stays_local_when_cool() {
        let mut plan = PlanNode::Sort {
            input: Box::new(scan_on(1)),
            on: NodeId(9),
        };
        place(
            &mut plan,
            &loads(&[(1, 0.30), (2, 0.10)]),
            &PlacementPolicy::default(),
        );
        assert_eq!(
            plan.placement(),
            NodeId(1),
            "offloading at low utilization is inferior to local processing"
        );
    }

    #[test]
    fn no_offload_when_everyone_is_hot() {
        let mut plan = PlanNode::GroupAgg {
            input: Box::new(scan_on(1)),
            func: AggFunc::Count,
            on: NodeId(1),
        };
        place(
            &mut plan,
            &loads(&[(1, 0.95), (2, 0.93)]),
            &PlacementPolicy::default(),
        );
        assert_eq!(plan.placement(), NodeId(1), "no meaningfully cooler node");
    }

    #[test]
    fn buffer_insertion_respects_policy() {
        let mut plan = PlanNode::Sort {
            input: Box::new(scan_on(1)),
            on: NodeId(1),
        };
        let policy = PlacementPolicy {
            use_buffer_ops: false,
            ..Default::default()
        };
        place(&mut plan, &loads(&[(1, 0.95), (2, 0.05)]), &policy);
        if let PlanNode::Sort { input, .. } = &plan {
            assert!(!matches!(**input, PlanNode::Buffer { .. }));
        } else {
            panic!("sort expected");
        }
    }
}
