//! The WattDB-RS query engine: volcano-style operators with explicit
//! placement, vectorization, and buffering (prefetch) proxies.
//!
//! Implements §3.3 of the paper: distributed plans generated on the master,
//! pipelining operators colocated with their data, blocking operators
//! (sort, group/aggregate) offloadable to cooler nodes, vectorized
//! `next()` calls to amortize network round trips, and buffering operators
//! that prefetch asynchronously to hide shipping latency.
//!
//! Execution is functional *and* costed: [`execute`] returns real result
//! tuples plus a [`CostTrace`] of hardware demands that the cluster layer
//! replays through the shared simulated resources.

pub mod exec;
pub mod optimizer;
pub mod plan;

pub use exec::{execute, CostTrace, ExecConfig, Stage, StageKind};
pub use optimizer::{place, NodeLoad, PlacementPolicy};
pub use plan::{AggFunc, PlanNode, RowSource, SyntheticTable, Tuple};
