//! The WattDB-RS query engine: volcano-style operators with explicit
//! placement, vectorization, and buffering (prefetch) proxies.
//!
//! Implements §3.3 of the paper: distributed plans generated on the master,
//! pipelining operators colocated with their data, blocking operators
//! (sort, group/aggregate) offloadable to cooler nodes, vectorized
//! `next()` calls to amortize network round trips, and buffering operators
//! that prefetch asynchronously to hide shipping latency.
//!
//! Execution is functional *and* costed: [`execute`] returns real result
//! tuples plus a [`CostTrace`] of hardware demands that the cluster layer
//! replays through the shared simulated resources.

pub mod exec;
pub mod optimizer;
pub mod plan;

pub use exec::{execute, CostTrace, ExecConfig, Stage, StageKind};
pub use optimizer::{place, NodeLoad, PlacementPolicy};
pub use plan::{AggFunc, PlanNode, RowSource, SyntheticTable, Tuple};

/// The per-operator cost calibration this engine prices its stages with.
/// Re-exported as the query crate's cost model so downstream layers (the
/// core executor's cost-heat accounting in particular) consume the same
/// parameters the `CostTrace` stages were built from — one source of
/// truth, no silently diverging constants.
pub use wattdb_common::CostParams;
