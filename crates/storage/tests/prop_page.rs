//! Property tests: the slotted page against a model map.
//!
//! Random sequences of insert/update/delete/compact must keep the page's
//! live contents identical to a reference `HashMap<slot, payload>` and keep
//! the logical-space accounting consistent.

use proptest::prelude::*;
use std::collections::HashMap;
use wattdb_storage::page::{SlottedPage, PAGE_SIZE, SLOT_OVERHEAD};

#[derive(Debug, Clone)]
enum Op {
    Insert { payload: Vec<u8>, logical: usize },
    Update { victim: usize, payload: Vec<u8> },
    Delete { victim: usize },
    Compact,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (proptest::collection::vec(any::<u8>(), 0..64), 64usize..512).prop_map(
            |(payload, logical)| {
                let logical = logical.max(payload.len());
                Op::Insert { payload, logical }
            }
        ),
        2 => (any::<usize>(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(victim, payload)| Op::Update { victim, payload }),
        2 => any::<usize>().prop_map(|victim| Op::Delete { victim }),
        1 => Just(Op::Compact),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn page_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut page = SlottedPage::new();
        let mut model: HashMap<u16, (Vec<u8>, usize)> = HashMap::new();

        for op in ops {
            match op {
                Op::Insert { payload, logical } => {
                    let fits = page.fits(logical);
                    match page.insert(&payload, logical) {
                        Ok(slot) => {
                            prop_assert!(fits, "insert succeeded though fits() was false");
                            model.insert(slot, (payload, logical));
                        }
                        Err(_) => prop_assert!(!fits, "insert failed though fits() was true"),
                    }
                }
                Op::Update { victim, payload } => {
                    let slots: Vec<u16> = model.keys().copied().collect();
                    if slots.is_empty() { continue; }
                    let slot = slots[victim % slots.len()];
                    let logical = model[&slot].1.max(payload.len());
                    if page.update(slot, &payload, logical).is_ok() {
                        model.insert(slot, (payload, logical));
                    }
                }
                Op::Delete { victim } => {
                    let slots: Vec<u16> = model.keys().copied().collect();
                    if slots.is_empty() { continue; }
                    let slot = slots[victim % slots.len()];
                    page.delete(slot).unwrap();
                    model.remove(&slot);
                }
                Op::Compact => {
                    page.compact();
                    prop_assert_eq!(page.dead_bytes(), 0);
                }
            }

            // Invariants after every step.
            prop_assert_eq!(page.live_records(), model.len());
            prop_assert!(page.logical_used() <= PAGE_SIZE);
            let expected_logical: usize = model
                .values()
                .map(|(_, l)| l + SLOT_OVERHEAD)
                .sum();
            prop_assert_eq!(page.logical_used(), expected_logical);
            for (&slot, (payload, logical)) in &model {
                prop_assert_eq!(page.get(slot), Some(&payload[..]));
                prop_assert_eq!(page.logical_width(slot), Some(*logical));
            }
        }

        // Final compaction preserves everything.
        page.compact();
        prop_assert_eq!(page.live_records(), model.len());
        for (&slot, (payload, _)) in &model {
            prop_assert_eq!(page.get(slot), Some(&payload[..]));
        }
    }
}
