//! The page store: authoritative owner of all page data.
//!
//! In a real shared-nothing deployment each node's disks hold their own
//! pages; in this execution-driven simulation the page *contents* live in
//! one process-wide store keyed by segment, while *placement* (which node
//! and disk a segment belongs to, and which pages are buffered where) is
//! tracked by the metadata and buffer layers, which also charge the
//! corresponding virtual-time costs. Shared-nothing semantics are enforced
//! by the engine: a node only touches segments it owns, and any remote page
//! access is routed through the (costed) network layer.

use std::collections::HashMap;

use wattdb_common::{Error, PageId, RecordId, Result, SegmentId};

use crate::page::{SlottedPage, PAGE_SIZE, SLOT_OVERHEAD};
use crate::record::Record;

/// Process-wide page data, keyed by segment.
#[derive(Debug, Default)]
pub struct PageStore {
    segments: HashMap<SegmentId, Vec<SlottedPage>>,
}

impl PageStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a segment with zero pages.
    pub fn add_segment(&mut self, id: SegmentId) {
        self.segments.entry(id).or_default();
    }

    /// Drop a segment's pages entirely (after a move's cleanup phase).
    pub fn drop_segment(&mut self, id: SegmentId) -> Result<Vec<SlottedPage>> {
        self.segments.remove(&id).ok_or(Error::UnknownSegment(id))
    }

    /// True if the segment exists in the store.
    pub fn has_segment(&self, id: SegmentId) -> bool {
        self.segments.contains_key(&id)
    }

    /// Number of pages allocated in `segment`.
    pub fn page_count(&self, segment: SegmentId) -> usize {
        self.segments.get(&segment).map_or(0, |p| p.len())
    }

    /// Append a fresh page to `segment`, returning its id.
    pub fn alloc_page(&mut self, segment: SegmentId) -> Result<PageId> {
        let pages = self
            .segments
            .get_mut(&segment)
            .ok_or(Error::UnknownSegment(segment))?;
        pages.push(SlottedPage::new());
        Ok(PageId::new(segment, (pages.len() - 1) as u32))
    }

    /// Immutable page access.
    pub fn page(&self, id: PageId) -> Result<&SlottedPage> {
        self.segments
            .get(&id.segment)
            .and_then(|p| p.get(id.page_no as usize))
            .ok_or(Error::UnknownSegment(id.segment))
    }

    /// Mutable page access.
    pub fn page_mut(&mut self, id: PageId) -> Result<&mut SlottedPage> {
        self.segments
            .get_mut(&id.segment)
            .and_then(|p| p.get_mut(id.page_no as usize))
            .ok_or(Error::UnknownSegment(id.segment))
    }

    /// Insert an encoded record into `segment`, appending to the last page
    /// with room or allocating a new page (up to `max_pages`). Returns the
    /// record's address and whether a page was allocated.
    pub fn insert_record(
        &mut self,
        segment: SegmentId,
        record: &Record,
        max_pages: u32,
    ) -> Result<(RecordId, bool)> {
        let logical = record.logical_footprint();
        assert!(
            logical + SLOT_OVERHEAD <= PAGE_SIZE,
            "record logical width exceeds page size"
        );
        let pages = self
            .segments
            .get_mut(&segment)
            .ok_or(Error::UnknownSegment(segment))?;
        // Fast path: last page has room (append workloads).
        if let Some(last) = pages.last_mut() {
            if last.fits(logical) {
                let slot = last.insert(&record.encode(), logical)?;
                let page_no = (pages.len() - 1) as u32;
                return Ok((RecordId::new(PageId::new(segment, page_no), slot), false));
            }
        }
        // Scan earlier pages for a hole (records freed by moves/GC).
        for (i, p) in pages.iter_mut().enumerate() {
            if p.fits(logical) {
                let slot = p.insert(&record.encode(), logical)?;
                return Ok((RecordId::new(PageId::new(segment, i as u32), slot), false));
            }
        }
        if pages.len() as u32 >= max_pages {
            return Err(Error::InvalidState("segment full"));
        }
        let mut page = SlottedPage::new();
        let slot = page.insert(&record.encode(), logical)?;
        pages.push(page);
        let page_no = (pages.len() - 1) as u32;
        Ok((RecordId::new(PageId::new(segment, page_no), slot), true))
    }

    /// Decode the record stored at `rid`.
    pub fn read_record(&self, rid: RecordId) -> Result<Record> {
        let page = self.page(rid.page)?;
        let bytes = page.get(rid.slot).ok_or(Error::RecordNotFound(rid))?;
        Record::decode(bytes)
    }

    /// Overwrite the record at `rid` (same key; used for version-chain
    /// maintenance like setting `end` timestamps).
    pub fn write_record(&mut self, rid: RecordId, record: &Record) -> Result<()> {
        let page = self.page_mut(rid.page)?;
        if page.get(rid.slot).is_none() {
            return Err(Error::RecordNotFound(rid));
        }
        page.update(rid.slot, &record.encode(), record.logical_footprint())
    }

    /// Remove the record at `rid`.
    pub fn delete_record(&mut self, rid: RecordId) -> Result<()> {
        let page = self.page_mut(rid.page)?;
        if page.get(rid.slot).is_none() {
            return Err(Error::RecordNotFound(rid));
        }
        page.delete(rid.slot)
    }

    /// Iterate decoded records of a segment in (page, slot) order.
    pub fn scan_segment(&self, segment: SegmentId) -> Result<Vec<(RecordId, Record)>> {
        let pages = self
            .segments
            .get(&segment)
            .ok_or(Error::UnknownSegment(segment))?;
        let mut out = Vec::new();
        for (page_no, page) in pages.iter().enumerate() {
            for (slot, bytes) in page.iter() {
                let rid = RecordId::new(PageId::new(segment, page_no as u32), slot);
                out.push((rid, Record::decode(bytes)?));
            }
        }
        Ok(out)
    }

    /// Move a whole segment's pages under a new segment id (physical /
    /// physiological segment move: contents are byte-identical, only the
    /// placement changes — the caller charges copy time).
    pub fn clone_segment(&mut self, from: SegmentId, to: SegmentId) -> Result<()> {
        let pages = self
            .segments
            .get(&from)
            .ok_or(Error::UnknownSegment(from))?
            .clone();
        self.segments.insert(to, pages);
        Ok(())
    }

    /// Total physical bytes held (memory footprint diagnostics).
    pub fn physical_bytes(&self) -> usize {
        self.segments
            .values()
            .flat_map(|ps| ps.iter())
            .map(|p| p.physical_bytes())
            .sum()
    }

    /// Total logical bytes of live data in a segment.
    pub fn logical_bytes(&self, segment: SegmentId) -> Result<u64> {
        let pages = self
            .segments
            .get(&segment)
            .ok_or(Error::UnknownSegment(segment))?;
        Ok(pages.iter().map(|p| p.logical_used() as u64).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wattdb_common::Key;

    fn rec(key: u64, width: u32) -> Record {
        Record::new(Key(key), 1, width, key.to_le_bytes().to_vec())
    }

    #[test]
    fn insert_and_read_back() {
        let mut store = PageStore::new();
        let seg = SegmentId(1);
        store.add_segment(seg);
        let (rid, allocated) = store.insert_record(seg, &rec(7, 100), 16).unwrap();
        assert!(allocated, "first insert allocates a page");
        let r = store.read_record(rid).unwrap();
        assert_eq!(r.key, Key(7));
        assert_eq!(store.page_count(seg), 1);
    }

    #[test]
    fn pages_fill_then_allocate() {
        let mut store = PageStore::new();
        let seg = SegmentId(1);
        store.add_segment(seg);
        // Logical footprint ≈ 2046+46=2092+8 slot → 3 per page.
        let mut allocations = 0;
        for i in 0..30 {
            let (_, alloc) = store.insert_record(seg, &rec(i, 2046), 64).unwrap();
            allocations += alloc as usize;
        }
        assert_eq!(store.page_count(seg), allocations);
        assert!(
            allocations >= 8,
            "expected several pages, got {allocations}"
        );
    }

    #[test]
    fn segment_capacity_enforced() {
        let mut store = PageStore::new();
        let seg = SegmentId(1);
        store.add_segment(seg);
        let r = rec(1, 4000); // ~2 per page
        let mut inserted = 0;
        while store.insert_record(seg, &r, 2).is_ok() {
            inserted += 1;
        }
        assert_eq!(store.page_count(seg), 2);
        assert_eq!(inserted, 4);
    }

    #[test]
    fn update_and_delete() {
        let mut store = PageStore::new();
        let seg = SegmentId(1);
        store.add_segment(seg);
        let (rid, _) = store.insert_record(seg, &rec(5, 64), 4).unwrap();
        let mut r = store.read_record(rid).unwrap();
        r.end = 99;
        store.write_record(rid, &r).unwrap();
        assert_eq!(store.read_record(rid).unwrap().end, 99);
        store.delete_record(rid).unwrap();
        assert!(store.read_record(rid).is_err());
        assert!(store.delete_record(rid).is_err());
    }

    #[test]
    fn scan_returns_all_live_records() {
        let mut store = PageStore::new();
        let seg = SegmentId(1);
        store.add_segment(seg);
        let mut rids = Vec::new();
        for i in 0..10 {
            rids.push(store.insert_record(seg, &rec(i, 512), 8).unwrap().0);
        }
        store.delete_record(rids[3]).unwrap();
        let scanned = store.scan_segment(seg).unwrap();
        assert_eq!(scanned.len(), 9);
        assert!(scanned.iter().all(|(_, r)| r.key != Key(3)));
    }

    #[test]
    fn clone_segment_copies_contents() {
        let mut store = PageStore::new();
        let (a, b) = (SegmentId(1), SegmentId(2));
        store.add_segment(a);
        for i in 0..5 {
            store.insert_record(a, &rec(i, 128), 8).unwrap();
        }
        store.clone_segment(a, b).unwrap();
        assert_eq!(store.scan_segment(b).unwrap().len(), 5);
        // Dropping the original leaves the copy intact.
        store.drop_segment(a).unwrap();
        assert_eq!(store.scan_segment(b).unwrap().len(), 5);
        assert!(store.scan_segment(a).is_err());
    }

    #[test]
    fn slot_reuse_after_delete() {
        let mut store = PageStore::new();
        let seg = SegmentId(1);
        store.add_segment(seg);
        let (rid, _) = store.insert_record(seg, &rec(1, 3000), 4).unwrap();
        store.delete_record(rid).unwrap();
        // New insert lands in the freed space of page 0, not a new page.
        let (rid2, alloc) = store.insert_record(seg, &rec(2, 3000), 4).unwrap();
        assert!(!alloc);
        assert_eq!(rid2.page.page_no, 0);
    }

    #[test]
    fn logical_bytes_accounting() {
        let mut store = PageStore::new();
        let seg = SegmentId(1);
        store.add_segment(seg);
        store.insert_record(seg, &rec(1, 100), 4).unwrap();
        let lb = store.logical_bytes(seg).unwrap();
        // 100 logical + header + slot overhead.
        assert!(lb > 100 && lb < 250, "{lb}");
    }
}
