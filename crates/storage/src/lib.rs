//! Storage engine for WattDB-RS: pages, records, segments, disks, buffers.
//!
//! Implements the physical layer of Fig. 4 in the paper: tables consist of
//! partitions, partitions of segments (4096 pages / 32 MB), segments of
//! slotted pages holding versioned records. Disks are queueing timing
//! models; the buffer pool tracks page residency per node and supports the
//! remote (rDMA) extension used by helper nodes during rebalancing.

pub mod buffer;
pub mod disk;
pub mod latch;
pub mod page;
pub mod record;
pub mod segment;
pub mod store;

pub use buffer::{BufferPool, BufferStats, Fetch};
pub use disk::SimDisk;
pub use latch::{LatchAcquire, LatchMode, LatchTable};
pub use page::{SlottedPage, PAGE_SIZE, SLOT_OVERHEAD};
pub use record::{Record, FLAG_TOMBSTONE, RECORD_HEADER_BYTES, TS_INFINITY};
pub use segment::{SegmentDirectory, SegmentMeta, SEGMENT_PAGES_DEFAULT};
pub use store::PageStore;
