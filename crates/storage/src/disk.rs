//! Simulated disk drives.
//!
//! Each node of the paper's testbed carries one HDD and two SSDs. A
//! [`SimDisk`] pairs the drive's timing/capacity spec with a single-slot
//! queueing [`Resource`], so concurrent requests serialize and queue —
//! the effect that makes rebalancing I/O hurt foreground queries (Fig. 7).
//!
//! [`Resource`]: wattdb_sim::Resource

use wattdb_common::config::{DiskKind, DiskSpec};
use wattdb_common::{ByteSize, DiskId, SimDuration};
use wattdb_sim::{EventFn, Resource, ResourceHandle, Sim};

use crate::page::PAGE_SIZE;

/// A drive attached to a node.
pub struct SimDisk {
    id: DiskId,
    spec: DiskSpec,
    resource: ResourceHandle,
    used: ByteSize,
    reads: u64,
    writes: u64,
}

impl SimDisk {
    /// Create a drive with its own request queue.
    pub fn new(id: DiskId, spec: DiskSpec) -> Self {
        Self {
            id,
            spec,
            resource: Resource::new(format!("{id}-{:?}", spec.kind), 1),
            used: ByteSize::ZERO,
            reads: 0,
            writes: 0,
        }
    }

    /// Drive id.
    pub fn id(&self) -> DiskId {
        self.id
    }

    /// Drive kind (HDD/SSD).
    pub fn kind(&self) -> DiskKind {
        self.spec.kind
    }

    /// Timing/capacity spec.
    pub fn spec(&self) -> &DiskSpec {
        &self.spec
    }

    /// The underlying queueing resource (for utilization probes).
    pub fn resource(&self) -> &ResourceHandle {
        &self.resource
    }

    /// Bytes currently allocated on the drive.
    pub fn used(&self) -> ByteSize {
        self.used
    }

    /// Remaining capacity.
    pub fn free(&self) -> ByteSize {
        self.spec.capacity - self.used
    }

    /// Utilization of capacity in \[0,1\].
    pub fn fill_ratio(&self) -> f64 {
        self.used.as_u64() as f64 / self.spec.capacity.as_u64() as f64
    }

    /// Reads issued.
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// Writes issued.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Reserve space for newly allocated data (segment placement).
    pub fn reserve(&mut self, bytes: ByteSize) {
        self.used += bytes;
    }

    /// Return space after segment removal.
    pub fn release(&mut self, bytes: ByteSize) {
        self.used = self.used - bytes;
    }

    /// Submit a page-sized read; `done` fires when the head/flash finishes.
    pub fn read_page(&mut self, sim: &mut Sim, done: EventFn) {
        self.reads += 1;
        let t = self.spec.service_time(ByteSize::bytes(PAGE_SIZE as u64));
        Resource::submit(&self.resource, sim, t, done);
    }

    /// Submit a page-sized write.
    pub fn write_page(&mut self, sim: &mut Sim, done: EventFn) {
        self.writes += 1;
        let t = self.spec.service_time(ByteSize::bytes(PAGE_SIZE as u64));
        Resource::submit(&self.resource, sim, t, done);
    }

    /// Submit a bulk sequential transfer (segment copy, log flush),
    /// streamed in 8 MiB chunks so foreground page requests can
    /// interleave in the device queue instead of stalling behind one
    /// multi-second request.
    pub fn bulk_transfer(&mut self, sim: &mut Sim, bytes: ByteSize, done: EventFn) {
        const CHUNK: u64 = 8 * 1024 * 1024;
        self.writes += 1;
        let total = bytes.as_u64();
        if total <= CHUNK {
            let t = self.spec.service_time(bytes);
            Resource::submit(&self.resource, sim, t, done);
            return;
        }
        let first = ByteSize::bytes(CHUNK);
        let rest = ByteSize::bytes(total - CHUNK);
        let resource = self.resource.clone();
        let spec = self.spec;
        let t = spec.service_time(first);
        // Chain the remainder from the chunk's completion (self is not
        // captured: chunk accounting uses the cloned handle directly).
        let chain: EventFn = Box::new(move |sim: &mut Sim| {
            chunked_rest(resource, spec, sim, rest, done);
        });
        Resource::submit(&self.resource, sim, t, chain);
    }

    /// Service time for one request of `bytes` with no queueing (cost
    /// estimation for the migration planner).
    pub fn estimate(&self, bytes: ByteSize) -> SimDuration {
        self.spec.service_time(bytes)
    }
}

fn chunked_rest(
    resource: ResourceHandle,
    spec: DiskSpec,
    sim: &mut Sim,
    remaining: ByteSize,
    done: EventFn,
) {
    const CHUNK: u64 = 8 * 1024 * 1024;
    let total = remaining.as_u64();
    if total == 0 {
        sim.after(wattdb_common::SimDuration::ZERO, done);
        return;
    }
    let this = ByteSize::bytes(total.min(CHUNK));
    let rest = ByteSize::bytes(total.saturating_sub(CHUNK));
    let t = spec.service_time(this);
    let r2 = resource.clone();
    let chain: EventFn = Box::new(move |sim: &mut Sim| {
        if rest.as_u64() == 0 {
            done(sim);
        } else {
            chunked_rest(r2, spec, sim, rest, done);
        }
    });
    Resource::submit(&resource, sim, t, chain);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;
    use wattdb_common::NodeId;

    fn hdd() -> SimDisk {
        SimDisk::new(DiskId::new(NodeId(1), 0), DiskSpec::hdd())
    }

    #[test]
    fn page_read_takes_seek_plus_transfer() {
        let mut sim = Sim::new();
        let mut d = hdd();
        let done_at = Rc::new(RefCell::new(None));
        let da = done_at.clone();
        d.read_page(
            &mut sim,
            Box::new(move |sim| *da.borrow_mut() = Some(sim.now())),
        );
        sim.run_to_completion();
        let t = done_at.borrow().unwrap();
        // 8 ms seek + 8192B / 100 MB/s ≈ 8.082 ms.
        assert!(t.as_micros() >= 8_000 && t.as_micros() < 8_200, "{t}");
        assert_eq!(d.read_count(), 1);
    }

    #[test]
    fn requests_serialize_on_one_spindle() {
        let mut sim = Sim::new();
        let mut d = hdd();
        let times: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..3 {
            let t = times.clone();
            d.read_page(
                &mut sim,
                Box::new(move |sim| t.borrow_mut().push(sim.now().as_micros())),
            );
        }
        sim.run_to_completion();
        let v = times.borrow();
        assert_eq!(v.len(), 3);
        // Completions spaced one service time apart, not concurrent.
        assert!(v[1] - v[0] >= 8_000);
        assert!(v[2] - v[1] >= 8_000);
    }

    #[test]
    fn bulk_transfer_is_bandwidth_bound() {
        let mut sim = Sim::new();
        let mut d = hdd();
        let done_at = Rc::new(RefCell::new(None));
        let da = done_at.clone();
        // 32 MiB segment at 100 MB/s ≈ 335 ms + 8 ms seek.
        d.bulk_transfer(
            &mut sim,
            ByteSize::mib(32),
            Box::new(move |sim| *da.borrow_mut() = Some(sim.now())),
        );
        sim.run_to_completion();
        let t = done_at.borrow().unwrap();
        assert!(t.as_micros() > 300_000 && t.as_micros() < 400_000, "{t}");
    }

    #[test]
    fn capacity_bookkeeping() {
        let mut d = hdd();
        let cap = d.spec().capacity;
        d.reserve(ByteSize::mib(32));
        assert_eq!(d.used(), ByteSize::mib(32));
        assert_eq!(d.free(), cap - ByteSize::mib(32));
        assert!(d.fill_ratio() > 0.0);
        d.release(ByteSize::mib(32));
        assert_eq!(d.used(), ByteSize::ZERO);
    }

    #[test]
    fn ssd_much_faster_than_hdd() {
        let d_ssd = SimDisk::new(DiskId::new(NodeId(1), 1), DiskSpec::ssd());
        let d_hdd = hdd();
        let page = ByteSize::bytes(PAGE_SIZE as u64);
        assert!(d_ssd.estimate(page).as_micros() * 10 < d_hdd.estimate(page).as_micros());
    }
}
