//! Page latches with explicit waiter queues.
//!
//! Latches are the short-term physical synchronization below transactional
//! locks. Because the engine runs under a deterministic event loop rather
//! than OS threads, the latch table is written in "request / grant token"
//! style: an acquire either succeeds immediately or queues a caller-supplied
//! waiter token; releases return the tokens that are now granted, and the
//! caller (the cluster executor) resumes those continuations. The same table
//! doubles as a conventional blocking latch through the facade in
//! `wattdb-txn`.
//!
//! Fairness: FIFO with shared-batch granting — when the head of the queue is
//! a shared request, all consecutive shared requests at the head are granted
//! together.

use std::collections::{HashMap, VecDeque};

use wattdb_common::PageId;

/// Latch mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatchMode {
    /// Multiple readers.
    Shared,
    /// Single writer.
    Exclusive,
}

/// Result of an acquire attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum LatchAcquire {
    /// Granted immediately.
    Granted,
    /// Queued; the token comes back from a later `release`.
    Queued,
}

#[derive(Debug)]
struct LatchState<T> {
    shared_holders: u32,
    exclusive: bool,
    queue: VecDeque<(LatchMode, T)>,
}

impl<T> LatchState<T> {
    fn new() -> Self {
        Self {
            shared_holders: 0,
            exclusive: false,
            queue: VecDeque::new(),
        }
    }

    fn is_free(&self) -> bool {
        self.shared_holders == 0 && !self.exclusive && self.queue.is_empty()
    }
}

/// Latch table over pages, generic over the waiter token type.
#[derive(Debug)]
pub struct LatchTable<T> {
    latches: HashMap<PageId, LatchState<T>>,
    contentions: u64,
    acquisitions: u64,
}

impl<T> Default for LatchTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LatchTable<T> {
    /// Empty table.
    pub fn new() -> Self {
        Self {
            latches: HashMap::new(),
            contentions: 0,
            acquisitions: 0,
        }
    }

    /// Attempt to latch `page` in `mode`. On conflict the `waiter` token is
    /// queued FIFO.
    pub fn acquire(&mut self, page: PageId, mode: LatchMode, waiter: T) -> LatchAcquire {
        self.acquisitions += 1;
        let st = self.latches.entry(page).or_insert_with(LatchState::new);
        let compatible = match mode {
            LatchMode::Shared => !st.exclusive && st.queue.is_empty(),
            LatchMode::Exclusive => !st.exclusive && st.shared_holders == 0,
        };
        if compatible {
            match mode {
                LatchMode::Shared => st.shared_holders += 1,
                LatchMode::Exclusive => st.exclusive = true,
            }
            LatchAcquire::Granted
        } else {
            self.contentions += 1;
            st.queue.push_back((mode, waiter));
            LatchAcquire::Queued
        }
    }

    /// Release a latch held in `mode`. Returns waiters granted now, in grant
    /// order, each with the mode it now holds.
    pub fn release(&mut self, page: PageId, mode: LatchMode) -> Vec<(LatchMode, T)> {
        let st = self
            .latches
            .get_mut(&page)
            .expect("release of unlatched page");
        match mode {
            LatchMode::Shared => {
                assert!(st.shared_holders > 0, "shared release without holder");
                st.shared_holders -= 1;
            }
            LatchMode::Exclusive => {
                assert!(st.exclusive, "exclusive release without holder");
                st.exclusive = false;
            }
        }
        let mut granted = Vec::new();
        // Grant from the head while compatible.
        while let Some((m, _)) = st.queue.front() {
            let ok = match m {
                LatchMode::Shared => !st.exclusive,
                LatchMode::Exclusive => !st.exclusive && st.shared_holders == 0,
            };
            if !ok {
                break;
            }
            let (m, tok) = st.queue.pop_front().expect("non-empty");
            match m {
                LatchMode::Shared => st.shared_holders += 1,
                LatchMode::Exclusive => st.exclusive = true,
            }
            let stop_after = m == LatchMode::Exclusive;
            granted.push((m, tok));
            if stop_after {
                break;
            }
        }
        if st.is_free() {
            self.latches.remove(&page);
        }
        granted
    }

    /// Number of pages with an active latch entry.
    pub fn active(&self) -> usize {
        self.latches.len()
    }

    /// Conflicted acquisitions (waited).
    pub fn contentions(&self) -> u64 {
        self.contentions
    }

    /// Total acquisitions attempted.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wattdb_common::SegmentId;

    fn pid(no: u32) -> PageId {
        PageId::new(SegmentId(1), no)
    }

    #[test]
    fn shared_latches_coexist() {
        let mut t: LatchTable<u32> = LatchTable::new();
        assert_eq!(
            t.acquire(pid(0), LatchMode::Shared, 1),
            LatchAcquire::Granted
        );
        assert_eq!(
            t.acquire(pid(0), LatchMode::Shared, 2),
            LatchAcquire::Granted
        );
        assert_eq!(t.contentions(), 0);
    }

    #[test]
    fn exclusive_blocks_everyone() {
        let mut t: LatchTable<u32> = LatchTable::new();
        assert_eq!(
            t.acquire(pid(0), LatchMode::Exclusive, 1),
            LatchAcquire::Granted
        );
        assert_eq!(
            t.acquire(pid(0), LatchMode::Shared, 2),
            LatchAcquire::Queued
        );
        assert_eq!(
            t.acquire(pid(0), LatchMode::Exclusive, 3),
            LatchAcquire::Queued
        );
        let granted = t.release(pid(0), LatchMode::Exclusive);
        // Shared waiter 2 granted; exclusive 3 still waits behind it.
        assert_eq!(granted, vec![(LatchMode::Shared, 2)]);
        let granted = t.release(pid(0), LatchMode::Shared);
        assert_eq!(granted, vec![(LatchMode::Exclusive, 3)]);
    }

    #[test]
    fn shared_batch_granted_together() {
        let mut t: LatchTable<u32> = LatchTable::new();
        t.acquire(pid(0), LatchMode::Exclusive, 1);
        t.acquire(pid(0), LatchMode::Shared, 2);
        t.acquire(pid(0), LatchMode::Shared, 3);
        t.acquire(pid(0), LatchMode::Exclusive, 4);
        let granted = t.release(pid(0), LatchMode::Exclusive);
        assert_eq!(
            granted,
            vec![(LatchMode::Shared, 2), (LatchMode::Shared, 3)]
        );
    }

    #[test]
    fn writer_not_starved_by_late_readers() {
        let mut t: LatchTable<u32> = LatchTable::new();
        t.acquire(pid(0), LatchMode::Shared, 1);
        t.acquire(pid(0), LatchMode::Exclusive, 2);
        // A new shared request queues behind the waiting writer instead of
        // barging (queue non-empty ⇒ shared must wait).
        assert_eq!(
            t.acquire(pid(0), LatchMode::Shared, 3),
            LatchAcquire::Queued
        );
        let granted = t.release(pid(0), LatchMode::Shared);
        assert_eq!(granted, vec![(LatchMode::Exclusive, 2)]);
        let granted = t.release(pid(0), LatchMode::Exclusive);
        assert_eq!(granted, vec![(LatchMode::Shared, 3)]);
    }

    #[test]
    fn table_cleans_up_free_latches() {
        let mut t: LatchTable<u32> = LatchTable::new();
        t.acquire(pid(0), LatchMode::Shared, 1);
        assert_eq!(t.active(), 1);
        t.release(pid(0), LatchMode::Shared);
        assert_eq!(t.active(), 0);
    }

    #[test]
    fn independent_pages_do_not_conflict() {
        let mut t: LatchTable<u32> = LatchTable::new();
        assert_eq!(
            t.acquire(pid(0), LatchMode::Exclusive, 1),
            LatchAcquire::Granted
        );
        assert_eq!(
            t.acquire(pid(1), LatchMode::Exclusive, 2),
            LatchAcquire::Granted
        );
    }

    #[test]
    #[should_panic(expected = "release of unlatched page")]
    fn release_without_acquire_panics() {
        let mut t: LatchTable<u32> = LatchTable::new();
        t.release(pid(0), LatchMode::Shared);
    }
}
