//! Slotted pages.
//!
//! A page is the unit of buffering and of data transfer between nodes (§4).
//! Records are stored in a classic slotted layout: a slot directory maps
//! stable slot numbers to byte extents in the page body; deletes leave holes
//! that compaction reclaims; updates relocate in place when they grow.
//!
//! **Logical vs. physical size.** The paper's experiments run against
//! ~200 GB of raw data; holding that many literal bytes in test memory is
//! pointless. Each record therefore carries a *logical width* (the schema's
//! row width, used for capacity, I/O, and network cost accounting) that may
//! exceed its *physical payload* (the compact bytes actually stored). A page
//! is "full" when logical bytes reach [`PAGE_SIZE`], so page counts, segment
//! counts, and movement volumes match a real deployment at the configured
//! scale while memory stays proportional to the compact payloads.

use wattdb_common::{Error, Lsn, Result};

/// Logical page size in bytes (8 KiB, 4096 pages per 32 MiB segment).
pub const PAGE_SIZE: usize = 8192;

/// Per-slot bookkeeping overhead counted against logical capacity.
pub const SLOT_OVERHEAD: usize = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// Live record: byte extent in `data` plus its logical width.
    Live { offset: u32, len: u32, logical: u32 },
    /// Tombstone: slot number retired until compaction.
    Dead,
}

/// An in-memory slotted page.
#[derive(Debug, Clone)]
pub struct SlottedPage {
    data: Vec<u8>,
    slots: Vec<Slot>,
    /// Logical bytes consumed (records + slot overhead).
    logical_used: usize,
    /// Physical bytes wasted by dead records (reclaimable by compaction).
    dead_bytes: usize,
    /// Recovery LSN of the latest change.
    page_lsn: Lsn,
    dirty: bool,
}

impl Default for SlottedPage {
    fn default() -> Self {
        Self::new()
    }
}

impl SlottedPage {
    /// An empty page.
    pub fn new() -> Self {
        Self {
            data: Vec::new(),
            slots: Vec::new(),
            logical_used: 0,
            dead_bytes: 0,
            page_lsn: Lsn::ZERO,
            dirty: false,
        }
    }

    /// Remaining logical capacity in bytes.
    pub fn free_logical(&self) -> usize {
        PAGE_SIZE - self.logical_used
    }

    /// Logical bytes in use (records + slot overhead).
    pub fn logical_used(&self) -> usize {
        self.logical_used
    }

    /// Number of live records.
    pub fn live_records(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, Slot::Live { .. }))
            .count()
    }

    /// Number of slots including tombstones.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// True if `logical` more bytes fit.
    pub fn fits(&self, logical: usize) -> bool {
        logical + SLOT_OVERHEAD <= self.free_logical()
    }

    /// Recovery LSN of the last change to this page.
    pub fn lsn(&self) -> Lsn {
        self.page_lsn
    }

    /// Set the recovery LSN (called by the WAL layer after logging).
    pub fn set_lsn(&mut self, lsn: Lsn) {
        self.page_lsn = lsn;
    }

    /// Whether the page has unflushed changes.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Mark flushed.
    pub fn mark_clean(&mut self) {
        self.dirty = false;
    }

    /// Insert a record with the given physical `payload` and `logical`
    /// width; returns the slot number. Fails with [`Error::PageFull`]-shaped
    /// `None`-free error when logical capacity is exhausted (the caller maps
    /// it to its page id).
    pub fn insert(&mut self, payload: &[u8], logical: usize) -> Result<u16> {
        assert!(
            logical >= payload.len(),
            "logical width {} below physical payload {}",
            logical,
            payload.len()
        );
        if !self.fits(logical) {
            // The caller knows the page id; signal with a placeholder id.
            return Err(Error::InvalidState("page full"));
        }
        let offset = self.data.len() as u32;
        self.data.extend_from_slice(payload);
        let slot = Slot::Live {
            offset,
            len: payload.len() as u32,
            logical: logical as u32,
        };
        self.logical_used += logical + SLOT_OVERHEAD;
        self.dirty = true;
        // Reuse a tombstone slot number if available.
        for (i, s) in self.slots.iter_mut().enumerate() {
            if *s == Slot::Dead {
                *s = slot;
                return Ok(i as u16);
            }
        }
        self.slots.push(slot);
        Ok((self.slots.len() - 1) as u16)
    }

    /// Read the physical payload of `slot`.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        match self.slots.get(slot as usize)? {
            Slot::Live { offset, len, .. } => {
                Some(&self.data[*offset as usize..(*offset + *len) as usize])
            }
            Slot::Dead => None,
        }
    }

    /// Logical width of the record in `slot`.
    pub fn logical_width(&self, slot: u16) -> Option<usize> {
        match self.slots.get(slot as usize)? {
            Slot::Live { logical, .. } => Some(*logical as usize),
            Slot::Dead => None,
        }
    }

    /// Delete the record in `slot`, leaving a tombstone.
    pub fn delete(&mut self, slot: u16) -> Result<()> {
        match self.slots.get_mut(slot as usize) {
            Some(s @ Slot::Live { .. }) => {
                if let Slot::Live { len, logical, .. } = *s {
                    self.dead_bytes += len as usize;
                    self.logical_used -= logical as usize + SLOT_OVERHEAD;
                }
                *s = Slot::Dead;
                self.dirty = true;
                Ok(())
            }
            _ => Err(Error::InvalidState("delete of dead or missing slot")),
        }
    }

    /// Replace the record in `slot`. The logical width may change; fails if
    /// growth exceeds capacity.
    pub fn update(&mut self, slot: u16, payload: &[u8], logical: usize) -> Result<()> {
        let (old_len, old_logical) = match self.slots.get(slot as usize) {
            Some(Slot::Live {
                len, logical: lw, ..
            }) => (*len as usize, *lw as usize),
            _ => return Err(Error::InvalidState("update of dead or missing slot")),
        };
        let new_used = self.logical_used - old_logical + logical;
        if new_used > PAGE_SIZE {
            return Err(Error::InvalidState("page full"));
        }
        // Append the new image; old bytes become dead space.
        let offset = self.data.len() as u32;
        self.data.extend_from_slice(payload);
        self.dead_bytes += old_len;
        self.slots[slot as usize] = Slot::Live {
            offset,
            len: payload.len() as u32,
            logical: logical as u32,
        };
        self.logical_used = new_used;
        self.dirty = true;
        Ok(())
    }

    /// Physical bytes reclaimable by compaction.
    pub fn dead_bytes(&self) -> usize {
        self.dead_bytes
    }

    /// Rewrite the page body, dropping dead bytes and trailing tombstone
    /// slots. Live slot numbers are preserved (required: record ids embed
    /// them).
    pub fn compact(&mut self) {
        let mut data = Vec::with_capacity(self.data.len() - self.dead_bytes);
        for s in &mut self.slots {
            if let Slot::Live { offset, len, .. } = s {
                let start = *offset as usize;
                let end = start + *len as usize;
                *offset = data.len() as u32;
                data.extend_from_slice(&self.data[start..end]);
            }
        }
        self.data = data;
        self.dead_bytes = 0;
        while matches!(self.slots.last(), Some(Slot::Dead)) {
            self.slots.pop();
        }
        self.dirty = true;
    }

    /// Iterate `(slot, payload)` over live records.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Live { offset, len, .. } => Some((
                i as u16,
                &self.data[*offset as usize..(*offset + *len) as usize],
            )),
            Slot::Dead => None,
        })
    }

    /// Physical bytes held by the page body (memory footprint measure).
    pub fn physical_bytes(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut p = SlottedPage::new();
        let s0 = p.insert(b"hello", 100).unwrap();
        let s1 = p.insert(b"world!", 200).unwrap();
        assert_eq!(p.get(s0), Some(&b"hello"[..]));
        assert_eq!(p.get(s1), Some(&b"world!"[..]));
        assert_eq!(p.logical_width(s0), Some(100));
        assert_eq!(p.live_records(), 2);
        assert!(p.is_dirty());
    }

    #[test]
    fn logical_capacity_binds() {
        let mut p = SlottedPage::new();
        // 4 records of logical 2000 (+8 overhead) fit; the 5th does not.
        for _ in 0..4 {
            p.insert(b"x", 2000).unwrap();
        }
        assert!(!p.fits(2000));
        assert!(p.insert(b"x", 2000).is_err());
        // But a small record still fits.
        assert!(p.fits(100));
        p.insert(b"y", 100).unwrap();
    }

    #[test]
    fn delete_frees_logical_space_and_reuses_slots() {
        let mut p = SlottedPage::new();
        let s0 = p.insert(b"aaaa", 4000).unwrap();
        let _s1 = p.insert(b"bbbb", 4000).unwrap();
        assert!(!p.fits(4000));
        p.delete(s0).unwrap();
        assert!(p.fits(4000));
        assert_eq!(p.get(s0), None);
        let s2 = p.insert(b"cccc", 4000).unwrap();
        assert_eq!(s2, s0, "tombstone slot number is reused");
        assert_eq!(p.get(s2), Some(&b"cccc"[..]));
    }

    #[test]
    fn double_delete_rejected() {
        let mut p = SlottedPage::new();
        let s = p.insert(b"a", 10).unwrap();
        p.delete(s).unwrap();
        assert!(p.delete(s).is_err());
        assert!(p.delete(99).is_err());
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut p = SlottedPage::new();
        let s = p.insert(b"short", 100).unwrap();
        p.update(s, b"a considerably longer payload", 150).unwrap();
        assert_eq!(p.get(s), Some(&b"a considerably longer payload"[..]));
        assert_eq!(p.logical_width(s), Some(150));
        // Growth beyond capacity is rejected and leaves the record intact.
        assert!(p.update(s, b"x", PAGE_SIZE).is_err());
        assert_eq!(p.get(s), Some(&b"a considerably longer payload"[..]));
    }

    #[test]
    fn compaction_preserves_live_records_and_slots() {
        let mut p = SlottedPage::new();
        let mut live = Vec::new();
        for i in 0..20u32 {
            let payload = i.to_le_bytes();
            let s = p.insert(&payload, 64).unwrap();
            live.push((s, payload));
        }
        // Delete every other record.
        for (s, _) in live.iter().step_by(2) {
            p.delete(*s).unwrap();
        }
        let dead_before = p.dead_bytes();
        assert!(dead_before > 0);
        p.compact();
        assert_eq!(p.dead_bytes(), 0);
        for (i, (s, payload)) in live.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(p.get(*s), None);
            } else {
                assert_eq!(p.get(*s), Some(&payload[..]));
            }
        }
    }

    #[test]
    fn update_then_compact_keeps_latest_image() {
        let mut p = SlottedPage::new();
        let s = p.insert(b"v1", 32).unwrap();
        p.update(s, b"v2", 32).unwrap();
        p.compact();
        assert_eq!(p.get(s), Some(&b"v2"[..]));
        assert_eq!(p.physical_bytes(), 2);
    }

    #[test]
    fn iter_yields_live_only() {
        let mut p = SlottedPage::new();
        let a = p.insert(b"a", 16).unwrap();
        let b = p.insert(b"b", 16).unwrap();
        let c = p.insert(b"c", 16).unwrap();
        p.delete(b).unwrap();
        let got: Vec<(u16, Vec<u8>)> = p.iter().map(|(s, d)| (s, d.to_vec())).collect();
        assert_eq!(got, vec![(a, b"a".to_vec()), (c, b"c".to_vec())]);
    }

    #[test]
    fn lsn_tracking() {
        let mut p = SlottedPage::new();
        assert_eq!(p.lsn(), Lsn::ZERO);
        p.set_lsn(Lsn(42));
        assert_eq!(p.lsn(), Lsn(42));
        p.mark_clean();
        assert!(!p.is_dirty());
        p.insert(b"x", 8).unwrap();
        assert!(p.is_dirty());
    }
}
