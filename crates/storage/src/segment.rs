//! Segments: the unit of physical distribution.
//!
//! "A segment (32 MB) consists of 4096 blocks or pages, which are
//! consecutively stored on disk. Segments are the unit of distribution in
//! the storage subsystem. Hence, all pages in a segment will be copied/moved
//! among nodes in one batch." (§4)
//!
//! Under *physiological* partitioning each segment additionally carries its
//! own primary-key range (a mini-partition); that range lives here as
//! metadata, while the per-segment PK index lives in `wattdb-index`.

use std::collections::BTreeMap;

use wattdb_common::{ByteSize, DiskId, Error, KeyRange, NodeId, Result, SegmentId, TableId};

use crate::page::PAGE_SIZE;

/// Number of pages per segment in the paper's configuration.
pub const SEGMENT_PAGES_DEFAULT: u32 = 4096;

/// Metadata for one segment.
#[derive(Debug, Clone)]
pub struct SegmentMeta {
    /// Segment id (globally unique).
    pub id: SegmentId,
    /// Table whose records this segment stores.
    pub table: TableId,
    /// Node that currently *stores* the segment's pages.
    pub node: NodeId,
    /// Drive on that node.
    pub disk: DiskId,
    /// Mini-partition key range (physiological partitioning); `None` under
    /// purely physical placement where segments have no key meaning.
    pub key_range: Option<KeyRange>,
    /// Maximum pages this segment may hold.
    pub max_pages: u32,
    /// Pages currently allocated.
    pub allocated_pages: u32,
    /// Live records across all pages.
    pub records: u64,
    /// Logical bytes in use (what would occupy a real disk).
    pub logical_bytes: ByteSize,
}

impl SegmentMeta {
    /// Segment capacity in logical bytes.
    pub fn capacity(&self) -> ByteSize {
        ByteSize::bytes(self.max_pages as u64 * PAGE_SIZE as u64)
    }

    /// Logical bytes the segment occupies on disk: allocated pages count in
    /// full (pages are the disk allocation granularity).
    pub fn disk_footprint(&self) -> ByteSize {
        ByteSize::bytes(self.allocated_pages as u64 * PAGE_SIZE as u64)
    }

    /// Fill ratio of allocated pages vs. capacity.
    pub fn fill_ratio(&self) -> f64 {
        self.allocated_pages as f64 / self.max_pages as f64
    }
}

/// The catalog of all segments in the cluster (maintained by the master,
/// mirrored read-only on workers in a real deployment).
#[derive(Debug, Default)]
pub struct SegmentDirectory {
    next_id: u64,
    segments: BTreeMap<SegmentId, SegmentMeta>,
}

impl SegmentDirectory {
    /// Empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a new segment on `node`/`disk` for `table`.
    pub fn create(
        &mut self,
        table: TableId,
        node: NodeId,
        disk: DiskId,
        key_range: Option<KeyRange>,
        max_pages: u32,
    ) -> SegmentId {
        let id = SegmentId(self.next_id);
        self.next_id += 1;
        self.segments.insert(
            id,
            SegmentMeta {
                id,
                table,
                node,
                disk,
                key_range,
                max_pages,
                allocated_pages: 0,
                records: 0,
                logical_bytes: ByteSize::ZERO,
            },
        );
        id
    }

    /// Look up a segment.
    pub fn get(&self, id: SegmentId) -> Result<&SegmentMeta> {
        self.segments.get(&id).ok_or(Error::UnknownSegment(id))
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, id: SegmentId) -> Result<&mut SegmentMeta> {
        self.segments.get_mut(&id).ok_or(Error::UnknownSegment(id))
    }

    /// Remove a segment (after its data has been dropped/moved).
    pub fn remove(&mut self, id: SegmentId) -> Result<SegmentMeta> {
        self.segments.remove(&id).ok_or(Error::UnknownSegment(id))
    }

    /// Reassign a segment's storage location (physical move) — page data
    /// movement and timing are handled by the migration engine.
    pub fn relocate(&mut self, id: SegmentId, node: NodeId, disk: DiskId) -> Result<()> {
        let m = self.get_mut(id)?;
        m.node = node;
        m.disk = disk;
        Ok(())
    }

    /// All segments of a table, in id order.
    pub fn of_table(&self, table: TableId) -> impl Iterator<Item = &SegmentMeta> + '_ {
        self.segments.values().filter(move |m| m.table == table)
    }

    /// All segments stored on a node.
    pub fn on_node(&self, node: NodeId) -> impl Iterator<Item = &SegmentMeta> + '_ {
        self.segments.values().filter(move |m| m.node == node)
    }

    /// Total number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True if no segments exist.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Iterate all segments in id order.
    pub fn iter(&self) -> impl Iterator<Item = &SegmentMeta> + '_ {
        self.segments.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wattdb_common::Key;

    fn disk(n: u16) -> DiskId {
        DiskId::new(NodeId(n), 0)
    }

    #[test]
    fn create_and_lookup() {
        let mut dir = SegmentDirectory::new();
        let id = dir.create(TableId(1), NodeId(1), disk(1), None, 128);
        let m = dir.get(id).unwrap();
        assert_eq!(m.table, TableId(1));
        assert_eq!(m.node, NodeId(1));
        assert_eq!(m.allocated_pages, 0);
        assert!(dir.get(SegmentId(99)).is_err());
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let mut dir = SegmentDirectory::new();
        let a = dir.create(TableId(1), NodeId(1), disk(1), None, 16);
        let b = dir.create(TableId(1), NodeId(1), disk(1), None, 16);
        assert!(b > a);
        assert_eq!(dir.len(), 2);
    }

    #[test]
    fn relocate_changes_storage_location() {
        let mut dir = SegmentDirectory::new();
        let id = dir.create(TableId(1), NodeId(1), disk(1), None, 16);
        dir.relocate(id, NodeId(2), disk(2)).unwrap();
        let m = dir.get(id).unwrap();
        assert_eq!(m.node, NodeId(2));
        assert_eq!(m.disk, disk(2));
    }

    #[test]
    fn filters_by_table_and_node() {
        let mut dir = SegmentDirectory::new();
        dir.create(TableId(1), NodeId(1), disk(1), None, 16);
        dir.create(TableId(2), NodeId(1), disk(1), None, 16);
        dir.create(TableId(1), NodeId(2), disk(2), None, 16);
        assert_eq!(dir.of_table(TableId(1)).count(), 2);
        assert_eq!(dir.on_node(NodeId(1)).count(), 2);
        assert_eq!(dir.on_node(NodeId(3)).count(), 0);
    }

    #[test]
    fn key_range_metadata() {
        let mut dir = SegmentDirectory::new();
        let kr = KeyRange::new(Key(0), Key(1000));
        let id = dir.create(TableId(1), NodeId(1), disk(1), Some(kr), 16);
        assert_eq!(dir.get(id).unwrap().key_range, Some(kr));
    }

    #[test]
    fn footprint_math() {
        let mut dir = SegmentDirectory::new();
        let id = dir.create(TableId(1), NodeId(1), disk(1), None, SEGMENT_PAGES_DEFAULT);
        let m = dir.get_mut(id).unwrap();
        m.allocated_pages = 2048;
        assert_eq!(m.capacity(), ByteSize::mib(32));
        assert_eq!(m.disk_footprint(), ByteSize::mib(16));
        assert!((m.fill_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn remove() {
        let mut dir = SegmentDirectory::new();
        let id = dir.create(TableId(1), NodeId(1), disk(1), None, 16);
        assert!(dir.remove(id).is_ok());
        assert!(dir.remove(id).is_err());
        assert!(dir.is_empty());
    }
}
