//! Versioned record encoding.
//!
//! WattDB uses multiversion concurrency control (§3.5): updating a record
//! creates a new version rather than overwriting, so readers can continue to
//! see old versions — including during partition moves. Each stored record
//! is one *version* with visibility timestamps and an optional pointer to
//! the previous version, encoded in a fixed header ahead of the payload.
//!
//! Timestamps: `begin` is the commit timestamp of the creating transaction
//! (or a provisional marker while uncommitted); `end` is the commit
//! timestamp of the deleting/superseding transaction, or [`TS_INFINITY`]
//! while the version is current.

use wattdb_common::{Error, Key, PageId, RecordId, Result, SegmentId};

/// `end` timestamp of a version that is still current.
pub const TS_INFINITY: u64 = u64::MAX;

/// Sentinel segment id meaning "no previous version".
const NO_PREV: u64 = u64::MAX;

/// Fixed encoded header size in bytes.
pub const RECORD_HEADER_BYTES: usize = 8 + 8 + 8 + 8 + 4 + 2 + 1 + 4 + 4;

/// Header flag bit: this version is a deletion tombstone.
pub const FLAG_TOMBSTONE: u8 = 0b0000_0001;

/// A decoded record version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Primary key.
    pub key: Key,
    /// Commit timestamp of the creator (visibility lower bound).
    pub begin: u64,
    /// Commit timestamp of the superseder, or [`TS_INFINITY`].
    pub end: u64,
    /// Previous version in the chain, if any.
    pub prev: Option<RecordId>,
    /// Header flags ([`FLAG_TOMBSTONE`]).
    pub flags: u8,
    /// Logical row width used for capacity/I-O/network cost accounting.
    pub logical_width: u32,
    /// Compact physical payload.
    pub payload: Vec<u8>,
}

impl Record {
    /// A fresh version with no predecessor.
    pub fn new(key: Key, begin: u64, logical_width: u32, payload: Vec<u8>) -> Self {
        Self {
            key,
            begin,
            end: TS_INFINITY,
            prev: None,
            flags: 0,
            logical_width,
            payload,
        }
    }

    /// A deletion tombstone for `key`: a version whose visibility window
    /// marks the key as absent.
    pub fn tombstone(key: Key, begin: u64) -> Self {
        Self {
            key,
            begin,
            end: TS_INFINITY,
            prev: None,
            flags: FLAG_TOMBSTONE,
            logical_width: 0,
            payload: Vec::new(),
        }
    }

    /// True if this version marks a deletion.
    pub fn is_tombstone(&self) -> bool {
        self.flags & FLAG_TOMBSTONE != 0
    }

    /// Total logical footprint: declared row width plus the version header.
    pub fn logical_footprint(&self) -> usize {
        self.logical_width as usize + RECORD_HEADER_BYTES
    }

    /// Serialize to bytes for page storage.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(RECORD_HEADER_BYTES + self.payload.len());
        out.extend_from_slice(&self.key.raw().to_le_bytes());
        out.extend_from_slice(&self.begin.to_le_bytes());
        out.extend_from_slice(&self.end.to_le_bytes());
        match self.prev {
            Some(rid) => {
                out.extend_from_slice(&rid.page.segment.raw().to_le_bytes());
                out.extend_from_slice(&rid.page.page_no.to_le_bytes());
                out.extend_from_slice(&rid.slot.to_le_bytes());
            }
            None => {
                out.extend_from_slice(&NO_PREV.to_le_bytes());
                out.extend_from_slice(&0u32.to_le_bytes());
                out.extend_from_slice(&0u16.to_le_bytes());
            }
        }
        out.push(self.flags);
        out.extend_from_slice(&self.logical_width.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Deserialize from page bytes.
    pub fn decode(bytes: &[u8]) -> Result<Record> {
        if bytes.len() < RECORD_HEADER_BYTES {
            return Err(Error::Corruption("record shorter than header"));
        }
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
        let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
        let u16_at = |o: usize| u16::from_le_bytes(bytes[o..o + 2].try_into().unwrap());
        let key = Key(u64_at(0));
        let begin = u64_at(8);
        let end = u64_at(16);
        let prev_seg = u64_at(24);
        let prev_page = u32_at(32);
        let prev_slot = u16_at(36);
        let flags = bytes[38];
        let logical_width = u32_at(39);
        let payload_len = u32_at(43) as usize;
        if bytes.len() < RECORD_HEADER_BYTES + payload_len {
            return Err(Error::Corruption("record payload truncated"));
        }
        let prev = if prev_seg == NO_PREV {
            None
        } else {
            Some(RecordId::new(
                PageId::new(SegmentId(prev_seg), prev_page),
                prev_slot,
            ))
        };
        Ok(Record {
            key,
            begin,
            end,
            prev,
            flags,
            logical_width,
            payload: bytes[RECORD_HEADER_BYTES..RECORD_HEADER_BYTES + payload_len].to_vec(),
        })
    }

    /// True if this version is visible to a snapshot at `ts`: created at or
    /// before the snapshot and not yet superseded at it.
    pub fn visible_at(&self, ts: u64) -> bool {
        self.begin <= ts && ts < self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Record {
        Record {
            key: Key(0xDEAD_BEEF),
            begin: 100,
            end: 250,
            prev: Some(RecordId::new(PageId::new(SegmentId(7), 3), 12)),
            flags: 0,
            logical_width: 306,
            payload: vec![1, 2, 3, 4, 5],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let r = sample();
        let bytes = r.encode();
        assert_eq!(Record::decode(&bytes).unwrap(), r);
    }

    #[test]
    fn roundtrip_without_prev() {
        let r = Record::new(Key(5), 1, 64, vec![9; 16]);
        let bytes = r.encode();
        let d = Record::decode(&bytes).unwrap();
        assert_eq!(d.prev, None);
        assert_eq!(d.end, TS_INFINITY);
        assert_eq!(d, r);
    }

    #[test]
    fn truncated_inputs_rejected() {
        let r = sample();
        let bytes = r.encode();
        assert!(Record::decode(&bytes[..10]).is_err());
        assert!(Record::decode(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn visibility_window() {
        let r = sample(); // [100, 250)
        assert!(!r.visible_at(99));
        assert!(r.visible_at(100));
        assert!(r.visible_at(249));
        assert!(!r.visible_at(250));
        let current = Record::new(Key(1), 10, 8, vec![]);
        assert!(current.visible_at(u64::MAX - 1));
    }

    #[test]
    fn logical_footprint_includes_header() {
        let r = sample();
        assert_eq!(r.logical_footprint(), 306 + RECORD_HEADER_BYTES);
    }

    #[test]
    fn tombstone_roundtrip() {
        let t = Record::tombstone(Key(9), 77);
        assert!(t.is_tombstone());
        let d = Record::decode(&t.encode()).unwrap();
        assert!(d.is_tombstone());
        assert_eq!(d.key, Key(9));
        assert_eq!(d.begin, 77);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let r = Record::new(Key(0), 0, 0, vec![]);
        assert_eq!(Record::decode(&r.encode()).unwrap(), r);
    }
}
