//! Buffer pool: residency tracking with clock eviction and a remote tier.
//!
//! Page *contents* always live in the [`PageStore`]; the buffer pool decides
//! which pages are resident in a node's (simulated 2 GB) DRAM. A fetch
//! returns what *would have happened* — hit, miss with optional dirty
//! eviction, or remote-tier hit — and the caller charges the corresponding
//! virtual-time costs (buffer bookkeeping, disk read, writeback, network).
//!
//! The remote tier models the paper's rDMA buffer extension (§5.2, Fig. 8):
//! helper nodes lend DRAM, so evicted warm pages go to remote memory instead
//! of disk, and faulting them back costs a network round trip instead of a
//! seek.
//!
//! [`PageStore`]: crate::store::PageStore

use std::collections::{HashMap, HashSet, VecDeque};

use wattdb_common::PageId;

/// Outcome of a fetch, from which the caller derives timing costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fetch {
    /// Page was resident: charge buffer bookkeeping only.
    Hit,
    /// Page must come from disk; if `writeback` is set, a dirty victim has
    /// to be written out first.
    Miss {
        /// Dirty page that must be written to disk to free the frame.
        writeback: Option<PageId>,
    },
    /// Page came from the remote (rDMA) tier: charge a network round trip.
    RemoteHit {
        /// Dirty victim to write back, as with a normal miss.
        writeback: Option<PageId>,
    },
}

#[derive(Debug, Clone, Copy, Default)]
struct Frame {
    pinned: u32,
    dirty: bool,
    referenced: bool,
}

/// Cumulative counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Fetches served from local DRAM.
    pub hits: u64,
    /// Fetches that went to disk.
    pub misses: u64,
    /// Fetches served from the remote tier.
    pub remote_hits: u64,
    /// Dirty pages written back on eviction.
    pub writebacks: u64,
    /// Evictions performed.
    pub evictions: u64,
}

impl BufferStats {
    /// Hit ratio over all fetches (remote hits count as hits of the
    /// extended buffer).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses + self.remote_hits;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.remote_hits) as f64 / total as f64
        }
    }
}

/// A per-node buffer pool.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    frames: HashMap<PageId, Frame>,
    clock: VecDeque<PageId>,
    remote_capacity: usize,
    remote: HashSet<PageId>,
    stats: BufferStats,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        Self {
            capacity,
            frames: HashMap::with_capacity(capacity),
            clock: VecDeque::with_capacity(capacity),
            remote_capacity: 0,
            remote: HashSet::new(),
            stats: BufferStats::default(),
        }
    }

    /// Frame capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident page count.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// Enable/resize the remote (rDMA) tier; shrinking drops spilled pages
    /// arbitrarily (they are clean copies — the store has the truth).
    pub fn set_remote_capacity(&mut self, pages: usize) {
        self.remote_capacity = pages;
        while self.remote.len() > pages {
            let victim = *self.remote.iter().next().expect("non-empty");
            self.remote.remove(&victim);
        }
    }

    /// Remote tier page count.
    pub fn remote_resident(&self) -> usize {
        self.remote.len()
    }

    /// Counters.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// True if the page is resident locally.
    pub fn is_resident(&self, page: PageId) -> bool {
        self.frames.contains_key(&page)
    }

    /// Fetch `page` and pin it. The caller must charge the costs implied by
    /// the returned [`Fetch`] and later [`unpin`](Self::unpin).
    pub fn fetch_pin(&mut self, page: PageId) -> Fetch {
        if let Some(f) = self.frames.get_mut(&page) {
            f.pinned += 1;
            f.referenced = true;
            self.stats.hits += 1;
            return Fetch::Hit;
        }
        let from_remote = self.remote.remove(&page);
        let writeback = self.make_room();
        self.frames.insert(
            page,
            Frame {
                pinned: 1,
                dirty: false,
                referenced: true,
            },
        );
        self.clock.push_back(page);
        if from_remote {
            self.stats.remote_hits += 1;
            Fetch::RemoteHit { writeback }
        } else {
            self.stats.misses += 1;
            Fetch::Miss { writeback }
        }
    }

    /// Choose and remove a victim if at capacity. Returns the dirty page to
    /// write back, if any. Panics if every frame is pinned (the engine
    /// bounds pins per operation well below pool size).
    fn make_room(&mut self) -> Option<PageId> {
        if self.frames.len() < self.capacity {
            return None;
        }
        // Clock sweep: skip pinned, clear reference bits, evict first
        // unreferenced unpinned frame.
        let mut sweeps = 0;
        let max_sweeps = self.clock.len() * 2 + 1;
        while sweeps < max_sweeps {
            sweeps += 1;
            let candidate = self.clock.pop_front().expect("clock not empty");
            let frame = *self.frames.get(&candidate).expect("clock/frame sync");
            if frame.pinned > 0 {
                self.clock.push_back(candidate);
                continue;
            }
            if frame.referenced {
                self.frames.get_mut(&candidate).expect("exists").referenced = false;
                self.clock.push_back(candidate);
                continue;
            }
            // Evict.
            self.frames.remove(&candidate);
            self.stats.evictions += 1;
            if self.remote_capacity > 0 && self.remote.len() < self.remote_capacity {
                self.remote.insert(candidate);
            }
            if frame.dirty {
                self.stats.writebacks += 1;
                return Some(candidate);
            }
            return None;
        }
        panic!("buffer pool exhausted: all {} frames pinned", self.capacity);
    }

    /// Unpin a previously fetched page, optionally marking it dirty.
    pub fn unpin(&mut self, page: PageId, dirty: bool) {
        let f = self
            .frames
            .get_mut(&page)
            .expect("unpin of non-resident page");
        assert!(f.pinned > 0, "unpin without pin");
        f.pinned -= 1;
        f.dirty |= dirty;
    }

    /// Mark a resident page clean (after a WAL-ordered flush).
    pub fn mark_clean(&mut self, page: PageId) {
        if let Some(f) = self.frames.get_mut(&page) {
            f.dirty = false;
        }
    }

    /// All dirty resident pages (checkpointing).
    pub fn dirty_pages(&self) -> Vec<PageId> {
        let mut v: Vec<PageId> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(p, _)| *p)
            .collect();
        v.sort_unstable();
        v
    }

    /// Drop every resident page of `segment` (segment moved away or
    /// dropped). Dirty pages of a moved segment were flushed by the
    /// migration protocol before this point.
    pub fn evict_segment(&mut self, segment: wattdb_common::SegmentId) {
        self.clock.retain(|p| p.segment != segment);
        self.frames.retain(|p, _| p.segment != segment);
        self.remote.retain(|p| p.segment != segment);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wattdb_common::SegmentId;

    fn pid(seg: u64, no: u32) -> PageId {
        PageId::new(SegmentId(seg), no)
    }

    #[test]
    fn hit_after_miss() {
        let mut bp = BufferPool::new(4);
        assert_eq!(bp.fetch_pin(pid(1, 0)), Fetch::Miss { writeback: None });
        bp.unpin(pid(1, 0), false);
        assert_eq!(bp.fetch_pin(pid(1, 0)), Fetch::Hit);
        bp.unpin(pid(1, 0), false);
        assert_eq!(bp.stats().hits, 1);
        assert_eq!(bp.stats().misses, 1);
    }

    #[test]
    fn eviction_when_full() {
        let mut bp = BufferPool::new(2);
        bp.fetch_pin(pid(1, 0));
        bp.unpin(pid(1, 0), false);
        bp.fetch_pin(pid(1, 1));
        bp.unpin(pid(1, 1), false);
        // Third page forces an eviction.
        let f = bp.fetch_pin(pid(1, 2));
        assert!(matches!(f, Fetch::Miss { writeback: None }));
        assert_eq!(bp.resident(), 2);
        assert_eq!(bp.stats().evictions, 1);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut bp = BufferPool::new(1);
        bp.fetch_pin(pid(1, 0));
        bp.unpin(pid(1, 0), true); // dirty
        match bp.fetch_pin(pid(1, 1)) {
            Fetch::Miss { writeback } => assert_eq!(writeback, Some(pid(1, 0))),
            other => panic!("expected miss, got {other:?}"),
        }
        assert_eq!(bp.stats().writebacks, 1);
    }

    #[test]
    fn pinned_pages_not_evicted() {
        let mut bp = BufferPool::new(2);
        bp.fetch_pin(pid(1, 0)); // stays pinned
        bp.fetch_pin(pid(1, 1));
        bp.unpin(pid(1, 1), false);
        bp.fetch_pin(pid(1, 2)); // must evict p1, not pinned p0
        assert!(bp.is_resident(pid(1, 0)));
        assert!(!bp.is_resident(pid(1, 1)));
    }

    #[test]
    #[should_panic(expected = "buffer pool exhausted")]
    fn all_pinned_panics() {
        let mut bp = BufferPool::new(1);
        bp.fetch_pin(pid(1, 0));
        bp.fetch_pin(pid(1, 1));
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut bp = BufferPool::new(2);
        bp.fetch_pin(pid(1, 0));
        bp.unpin(pid(1, 0), false);
        bp.fetch_pin(pid(1, 1));
        bp.unpin(pid(1, 1), false);
        // First eviction sweep clears ref bits and evicts p0; afterwards p1
        // is unreferenced and p2 freshly referenced.
        bp.fetch_pin(pid(1, 2));
        bp.unpin(pid(1, 2), false);
        assert!(!bp.is_resident(pid(1, 0)));
        // Next eviction must take the unreferenced p1, giving the
        // recently-referenced p2 its second chance.
        bp.fetch_pin(pid(1, 3));
        assert!(bp.is_resident(pid(1, 2)), "referenced page survives");
        assert!(!bp.is_resident(pid(1, 1)));
    }

    #[test]
    fn remote_tier_catches_evictions() {
        let mut bp = BufferPool::new(1);
        bp.set_remote_capacity(4);
        bp.fetch_pin(pid(1, 0));
        bp.unpin(pid(1, 0), false);
        bp.fetch_pin(pid(1, 1)); // evicts p0 into remote tier
        bp.unpin(pid(1, 1), false);
        assert_eq!(bp.remote_resident(), 1);
        // Fetching p0 again is a remote hit, not a disk miss.
        match bp.fetch_pin(pid(1, 0)) {
            Fetch::RemoteHit { .. } => {}
            other => panic!("expected remote hit, got {other:?}"),
        }
        assert_eq!(bp.stats().remote_hits, 1);
        assert!(bp.stats().hit_ratio() > 0.0);
    }

    #[test]
    fn evict_segment_clears_residency() {
        let mut bp = BufferPool::new(8);
        bp.set_remote_capacity(8);
        for i in 0..4 {
            bp.fetch_pin(pid(1, i));
            bp.unpin(pid(1, i), false);
        }
        bp.fetch_pin(pid(2, 0));
        bp.unpin(pid(2, 0), false);
        bp.evict_segment(SegmentId(1));
        assert_eq!(bp.resident(), 1);
        assert!(bp.is_resident(pid(2, 0)));
    }

    #[test]
    fn mark_clean_prevents_writeback() {
        let mut bp = BufferPool::new(1);
        bp.fetch_pin(pid(1, 0));
        bp.unpin(pid(1, 0), true);
        bp.mark_clean(pid(1, 0));
        match bp.fetch_pin(pid(1, 1)) {
            Fetch::Miss { writeback } => assert_eq!(writeback, None),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dirty_page_listing_sorted() {
        let mut bp = BufferPool::new(4);
        for i in [3u32, 1, 2] {
            bp.fetch_pin(pid(1, i));
            bp.unpin(pid(1, i), i != 2);
        }
        assert_eq!(bp.dirty_pages(), vec![pid(1, 1), pid(1, 3)]);
    }
}
