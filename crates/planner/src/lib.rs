//! # WattDB-RS planner: heat-aware rebalance planning
//!
//! The paper's master "checks the incoming performance data […] and decides
//! where to distribute data" (§3.4), but a *fraction* heuristic — shave the
//! upper half of each hot node's key-ordered segments — is heat-blind: a
//! scale-out can ship cold segments while the hot ones stay put. This crate
//! plans segment placement from the workload instead:
//!
//! * [`plan_scale_out`] relieves overloaded sources by greedy bin-packing:
//!   it moves the segments with the best heat-per-byte ratio onto the
//!   coldest targets until every source sits within a configurable
//!   tolerance of the mean heat — minimizing bytes shipped for the balance
//!   achieved, and never splitting a segment.
//! * [`plan_drain`] empties nodes selected for scale-in, spreading their
//!   segments hottest-first across the remaining nodes (longest-processing-
//!   time scheduling) instead of dumping everything onto one target.
//! * [`plan_fraction`] reproduces the legacy fraction heuristic on the same
//!   inputs, so experiments and property tests can compare plans
//!   byte-for-byte.
//!
//! Inputs are plain [`SegmentStat`] rows (id, placement, footprint bytes,
//! decayed heat); the crate holds no cluster state and performs no I/O, so
//! it can be property-tested exhaustively.
//!
//! ## Stationary vs. moving hotspots
//!
//! Heat is access *history*, so plans are only as good as the hotspot is
//! stationary. Read/update-heavy ranges (warehouse, district, customer
//! rows) stay hot where they are and the planner's predictions hold;
//! insert-heavy tables with ascending keys (orders, order-lines) have an
//! *advancing* hot range — the segments that were hot cool off as inserts
//! move past them, so relocating them buys less than the heat table
//! suggests. Tracking heat velocity to plan for where heat is *going* is
//! an open item (see the repository ROADMAP).

use std::collections::BTreeMap;

use wattdb_common::{KeyRange, NodeId, SegmentId, TableId};

/// Which algorithm plans rebalance moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Planner {
    /// Legacy heuristic: move a fixed fraction of each source's
    /// key-ordered segments, targets assigned round-robin.
    Fraction,
    /// Heat-aware greedy bin-packing over per-segment access heat
    /// (default).
    #[default]
    HeatAware,
}

impl Planner {
    /// Display label used in experiment output and event logs.
    pub fn label(self) -> &'static str {
        match self {
            Planner::Fraction => "fraction",
            Planner::HeatAware => "heat-aware",
        }
    }
}

/// One segment's planning inputs: where it lives, what it costs to ship,
/// how hot it runs.
#[derive(Debug, Clone, Copy)]
pub struct SegmentStat {
    /// Segment id.
    pub seg: SegmentId,
    /// Owning table.
    pub table: TableId,
    /// Covered key range (used verbatim in the resulting moves).
    pub range: KeyRange,
    /// Node currently storing the segment.
    pub node: NodeId,
    /// Bytes a move would ship (disk footprint × the experiment's
    /// `io_scale`).
    pub bytes: u64,
    /// Decayed access heat at planning time.
    pub heat: f64,
}

/// Planner tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct PlanConfig {
    /// Allowed overshoot above the mean per-node heat: a source stops
    /// shedding once its heat is ≤ `mean × (1 + tolerance)`.
    pub tolerance: f64,
}

impl Default for PlanConfig {
    fn default() -> Self {
        Self { tolerance: 0.1 }
    }
}

/// One planned segment relocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedMove {
    /// Moving segment.
    pub seg: SegmentId,
    /// Table it belongs to.
    pub table: TableId,
    /// Covered key range.
    pub range: KeyRange,
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
}

/// A complete rebalance plan with its predicted effect.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Planner that produced the plan.
    pub planner: Planner,
    /// Moves in execution order.
    pub moves: Vec<PlannedMove>,
    /// Total bytes the plan ships.
    pub bytes_planned: u64,
    /// Total heat the plan relocates.
    pub heat_planned: f64,
    /// Predicted per-node heat after the plan executes, over the nodes the
    /// plan was allowed to touch (sources and targets).
    pub predicted: BTreeMap<NodeId, f64>,
    /// Hottest node in the planning domain before any move.
    pub initial_max_heat: f64,
}

impl Plan {
    /// Hottest node in the planning domain after the plan executes.
    pub fn predicted_max_heat(&self) -> f64 {
        self.predicted.values().copied().fold(0.0, f64::max)
    }

    /// True when nothing needs to move.
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }
}

/// Sum per-node heat over the given domain.
fn heat_by_node(stats: &[SegmentStat], domain: &[NodeId]) -> BTreeMap<NodeId, f64> {
    let mut by_node: BTreeMap<NodeId, f64> = domain.iter().map(|&n| (n, 0.0)).collect();
    for s in stats {
        if let Some(h) = by_node.get_mut(&s.node) {
            *h += s.heat;
        }
    }
    by_node
}

/// The coldest node among `choices` (ties broken by fewest assigned bytes,
/// then lowest id, for determinism).
fn coldest(
    choices: &[NodeId],
    heat: &BTreeMap<NodeId, f64>,
    assigned_bytes: &BTreeMap<NodeId, u64>,
) -> Option<NodeId> {
    choices.iter().copied().min_by(|a, b| {
        let (ha, hb) = (heat[a], heat[b]);
        ha.partial_cmp(&hb)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                assigned_bytes
                    .get(a)
                    .unwrap_or(&0)
                    .cmp(assigned_bytes.get(b).unwrap_or(&0))
            })
            .then_with(|| a.cmp(b))
    })
}

/// Plan a scale-out: relieve `sources` by moving their hottest-per-byte
/// segments onto `targets` until every source's heat is within
/// `cfg.tolerance` of the mean over the planning domain (sources ∪
/// targets) — or no further move can improve the balance.
///
/// Guarantees:
/// * segments are never split and never land on a source;
/// * every move strictly lowers the maximum of the involved pair, so the
///   predicted maximum never exceeds the initial maximum;
/// * cold segments (zero heat) are never shipped — bytes buy balance or
///   they stay home.
pub fn plan_scale_out(
    stats: &[SegmentStat],
    sources: &[NodeId],
    targets: &[NodeId],
    cfg: &PlanConfig,
) -> Plan {
    let mut domain: Vec<NodeId> = sources.iter().chain(targets.iter()).copied().collect();
    domain.sort_unstable();
    domain.dedup();
    let mut node_heat = heat_by_node(stats, &domain);
    let initial_max_heat = node_heat.values().copied().fold(0.0, f64::max);
    let total: f64 = node_heat.values().sum();
    let mean = if domain.is_empty() {
        0.0
    } else {
        total / domain.len() as f64
    };
    let ceiling = mean * (1.0 + cfg.tolerance.max(0.0));

    let mut moves = Vec::new();
    let mut bytes_planned = 0u64;
    let mut heat_planned = 0.0f64;
    let mut assigned_bytes: BTreeMap<NodeId, u64> = BTreeMap::new();

    if targets.is_empty() {
        return Plan {
            planner: Planner::HeatAware,
            moves,
            bytes_planned,
            heat_planned,
            predicted: node_heat,
            initial_max_heat,
        };
    }

    // Hottest sources first: the worst imbalance gets first pick of the
    // empty targets.
    let mut src_order: Vec<NodeId> = sources.to_vec();
    src_order.sort_by(|a, b| {
        node_heat[b]
            .partial_cmp(&node_heat[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.cmp(b))
    });
    src_order.dedup();

    // Destinations are targets only — never another (possibly also hot)
    // source.
    let dests: Vec<NodeId> = targets
        .iter()
        .copied()
        .filter(|t| !sources.contains(t))
        .collect();
    if dests.is_empty() {
        return Plan {
            planner: Planner::HeatAware,
            moves,
            bytes_planned,
            heat_planned,
            predicted: node_heat,
            initial_max_heat,
        };
    }

    for src in src_order {
        // Candidates: this source's segments carrying heat, best
        // heat-per-byte first (most balance bought per byte shipped).
        let mut cands: Vec<&SegmentStat> = stats
            .iter()
            .filter(|s| s.node == src && s.heat > 0.0)
            .collect();
        cands.sort_by(|a, b| {
            let ra = a.heat / a.bytes.max(1) as f64;
            let rb = b.heat / b.bytes.max(1) as f64;
            rb.partial_cmp(&ra)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| {
                    b.heat
                        .partial_cmp(&a.heat)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .then_with(|| a.seg.cmp(&b.seg))
        });
        for cand in cands {
            if node_heat[&src] <= ceiling {
                break;
            }
            let Some(dest) = coldest(&dests, &node_heat, &assigned_bytes) else {
                break;
            };
            // Only move if the pair's maximum strictly improves; shifting
            // the hotspot to the target ships bytes for nothing.
            if node_heat[&dest] + cand.heat >= node_heat[&src] {
                continue;
            }
            *node_heat.get_mut(&src).expect("source in domain") -= cand.heat;
            *node_heat.get_mut(&dest).expect("target in domain") += cand.heat;
            *assigned_bytes.entry(dest).or_insert(0) += cand.bytes;
            bytes_planned += cand.bytes;
            heat_planned += cand.heat;
            moves.push(PlannedMove {
                seg: cand.seg,
                table: cand.table,
                range: cand.range,
                from: src,
                to: dest,
            });
        }
    }

    Plan {
        planner: Planner::HeatAware,
        moves,
        bytes_planned,
        heat_planned,
        predicted: node_heat,
        initial_max_heat,
    }
}

/// Plan a scale-in drain: *every* segment on the `drain` nodes must leave
/// (nodes holding data must not power off). Segments are assigned
/// hottest-first to the coldest remaining node — longest-processing-time
/// scheduling — so a drained node's hot segments spread across the
/// survivors instead of piling onto one.
pub fn plan_drain(
    stats: &[SegmentStat],
    drain: &[NodeId],
    remaining: &[NodeId],
    _cfg: &PlanConfig,
) -> Plan {
    let dests: Vec<NodeId> = remaining
        .iter()
        .copied()
        .filter(|n| !drain.contains(n))
        .collect();
    let mut domain: Vec<NodeId> = drain.iter().chain(dests.iter()).copied().collect();
    domain.sort_unstable();
    domain.dedup();
    let mut node_heat = heat_by_node(stats, &domain);
    let initial_max_heat = node_heat.values().copied().fold(0.0, f64::max);

    let mut moves = Vec::new();
    let mut bytes_planned = 0u64;
    let mut heat_planned = 0.0f64;
    let mut assigned_bytes: BTreeMap<NodeId, u64> = BTreeMap::new();

    if dests.is_empty() {
        return Plan {
            planner: Planner::HeatAware,
            moves,
            bytes_planned,
            heat_planned,
            predicted: node_heat,
            initial_max_heat,
        };
    }

    let mut evacuees: Vec<&SegmentStat> =
        stats.iter().filter(|s| drain.contains(&s.node)).collect();
    evacuees.sort_by(|a, b| {
        b.heat
            .partial_cmp(&a.heat)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| b.bytes.cmp(&a.bytes))
            .then_with(|| a.seg.cmp(&b.seg))
    });
    for seg in evacuees {
        let dest = coldest(&dests, &node_heat, &assigned_bytes).expect("dests non-empty");
        *node_heat.get_mut(&seg.node).expect("drain in domain") -= seg.heat;
        *node_heat.get_mut(&dest).expect("dest in domain") += seg.heat;
        *assigned_bytes.entry(dest).or_insert(0) += seg.bytes;
        bytes_planned += seg.bytes;
        heat_planned += seg.heat;
        moves.push(PlannedMove {
            seg: seg.seg,
            table: seg.table,
            range: seg.range,
            from: seg.node,
            to: dest,
        });
    }

    Plan {
        planner: Planner::HeatAware,
        moves,
        bytes_planned,
        heat_planned,
        predicted: node_heat,
        initial_max_heat,
    }
}

// ------------------------------------------------------------------ helpers

/// One node's load row for helper planning: how hot it runs overall and
/// how much of that heat is *net/remote-heavy* — the component a Fig. 8
/// helper (log shipping + remote buffer extension) actually relieves.
/// Under the cost-based heat signal the caller splits the components from
/// per-segment cost vectors; under the count signal `net_heat` falls back
/// to the total heat (the legacy signal cannot attribute components).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeLoadStat {
    /// The (active) node carrying the load.
    pub node: NodeId,
    /// Total decayed heat of the node's segments.
    pub heat: f64,
    /// The net/remote-heavy component of that heat.
    pub net_heat: f64,
}

/// One node eligible to serve as a helper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HelperCandidate {
    /// Candidate node.
    pub node: NodeId,
    /// Its current decayed heat (zero for standbys).
    pub heat: f64,
    /// Its current NIC load (net-heavy heat component, or measured
    /// transmit utilization — zero for standbys). A helper takes on its
    /// source's log shipping and remote-buffer traffic, so a candidate
    /// whose NIC is already busy relieves less than an idle one.
    pub net: f64,
    /// True when the node is in standby — the preferred helper pool: a
    /// standby brings fresh DRAM and an idle NIC at the cost of powering
    /// on, while an active node lends capacity it may still need.
    pub standby: bool,
}

/// Helper-planning knobs (the planner-facing subset of the policy's
/// `HelperPolicyConfig`).
#[derive(Debug, Clone, Copy)]
pub struct HelperConfig {
    /// Most source→helper assignments in one plan.
    pub max_helpers: usize,
    /// Sources with less net heat than this get no helper.
    pub min_net_heat: f64,
}

impl Default for HelperConfig {
    fn default() -> Self {
        Self {
            max_helpers: 2,
            min_net_heat: 0.0,
        }
    }
}

/// One planned helper attachment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HelperAssignment {
    /// Hot source whose log shipping and buffer overflow the helper takes.
    pub source: NodeId,
    /// The helper node.
    pub helper: NodeId,
    /// The source's net-heat component at planning time — what the
    /// attachment is predicted to relieve.
    pub net_heat: f64,
}

/// A complete helper plan with its predicted effect.
#[derive(Debug, Clone, Default)]
pub struct HelperPlan {
    /// Assignments in descending source net-heat order.
    pub assignments: Vec<HelperAssignment>,
    /// Total net/remote-heavy heat the plan relieves (the sum over the
    /// helped sources).
    pub predicted_relief: f64,
    /// The eligible candidate pool in preference order — standbys first,
    /// then idle-NIC, then coldest — one rendered line per candidate
    /// (`"n3 standby net=0.000 heat=0.000"`). Recorded on the helper span
    /// so an exported timeline shows why each helper won over the
    /// alternatives.
    pub ranking: Vec<String>,
}

impl HelperPlan {
    /// True when no helper is worth attaching.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// The helper nodes of the plan, in assignment order.
    pub fn helpers(&self) -> Vec<NodeId> {
        self.assignments.iter().map(|a| a.helper).collect()
    }

    /// The helped sources of the plan, in assignment order.
    pub fn sources(&self) -> Vec<NodeId> {
        self.assignments.iter().map(|a| a.source).collect()
    }
}

/// Plan helper attachments: rank `sources` by their net/remote-heavy heat
/// component and pair the heaviest with helpers drawn from `candidates`,
/// one helper per source, at most `cfg.max_helpers` assignments.
///
/// Helper choice prefers standbys, then idle-NIC candidates (a busy NIC
/// cannot absorb a source's shipping traffic), then the coldest
/// remaining ones. The plan never assigns:
/// * a node listed in `excluded` (migration sources/targets, nodes
///   already helping);
/// * a source to itself (or to another helped source);
/// * the master (`NodeId(0)`) while any alternative candidate exists;
/// * more than one source to the same helper.
///
/// Sources below `cfg.min_net_heat` are not helped — their pain is not
/// remote traffic. With a zero floor (the default) even a source with no
/// net component qualifies, ranked last: a log-shipping helper still
/// relieves its commit path. Cold sources (no heat at all) never get a
/// helper. With distinct heat signals the choice depends only on the
/// *signals*, so renumbering the nodes renames the answer without
/// changing which physical nodes pair up.
pub fn plan_helpers(
    sources: &[NodeLoadStat],
    candidates: &[HelperCandidate],
    excluded: &[NodeId],
    cfg: &HelperConfig,
) -> HelperPlan {
    let mut plan = HelperPlan::default();
    if cfg.max_helpers == 0 {
        return plan;
    }
    // Net-heaviest sources first; deterministic tie-break on id.
    let mut ranked: Vec<&NodeLoadStat> = sources
        .iter()
        .filter(|s| s.heat > 0.0 && s.net_heat >= cfg.min_net_heat)
        .collect();
    ranked.sort_by(|a, b| {
        b.net_heat
            .partial_cmp(&a.net_heat)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                b.heat
                    .partial_cmp(&a.heat)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .then_with(|| a.node.cmp(&b.node))
    });
    // One row per node, best-ranked occurrence wins: duplicate input rows
    // sort apart by their heats, so adjacent-only dedup would let a node
    // collect two helpers.
    let mut seen = std::collections::BTreeSet::new();
    ranked.retain(|s| seen.insert(s.node));

    // Eligible helpers: not excluded, not a source. Standbys first, then
    // the coldest actives; the master only as the pool of last resort.
    let is_source = |n: NodeId| sources.iter().any(|s| s.node == n);
    let eligible: Vec<&HelperCandidate> = candidates
        .iter()
        .filter(|c| !excluded.contains(&c.node) && !is_source(c.node))
        .collect();
    let mut pool: Vec<&HelperCandidate> = eligible
        .iter()
        .copied()
        .filter(|c| c.node != NodeId(0))
        .collect();
    if pool.is_empty() {
        pool = eligible;
    }
    pool.sort_by(|a, b| {
        b.standby
            .cmp(&a.standby)
            .then_with(|| {
                a.net
                    .partial_cmp(&b.net)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .then_with(|| {
                a.heat
                    .partial_cmp(&b.heat)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .then_with(|| a.node.cmp(&b.node))
    });
    // As above: best-ranked occurrence per node, or a duplicate candidate
    // row would let the same helper serve two sources.
    let mut seen = std::collections::BTreeSet::new();
    pool.retain(|c| seen.insert(c.node));
    plan.ranking = pool
        .iter()
        .map(|c| {
            format!(
                "{} {} net={:.3} heat={:.3}",
                c.node,
                if c.standby { "standby" } else { "active" },
                c.net,
                c.heat
            )
        })
        .collect();

    let mut next = pool.into_iter();
    for src in ranked.into_iter().take(cfg.max_helpers) {
        let Some(helper) = next.next() else {
            break;
        };
        plan.predicted_relief += src.net_heat;
        plan.assignments.push(HelperAssignment {
            source: src.node,
            helper: helper.node,
            net_heat: src.net_heat,
        });
    }
    plan
}

// ----------------------------------------------------------------- replicas

/// One segment's replica-planning input: its leader and the followers it
/// already has (kept, never duplicated by the plan).
#[derive(Debug, Clone)]
pub struct ReplicaNeed {
    /// The segment needing followers.
    pub seg: SegmentId,
    /// Its current leader — never a follower host.
    pub leader: NodeId,
    /// Followers already in place (after a failure: the survivors).
    pub existing: Vec<NodeId>,
}

/// One segment's planned follower additions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaPlacement {
    /// The segment.
    pub seg: SegmentId,
    /// Its leader (unchanged by the plan).
    pub leader: NodeId,
    /// **New** followers to attach, in assignment order.
    pub followers: Vec<NodeId>,
}

/// A complete replica placement plan.
#[derive(Debug, Clone, Default)]
pub struct ReplicaPlan {
    /// Per-segment follower additions; segments already at factor are
    /// omitted.
    pub placements: Vec<ReplicaPlacement>,
}

impl ReplicaPlan {
    /// True when every segment already has its followers.
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }

    /// Total follower attachments the plan makes.
    pub fn additions(&self) -> usize {
        self.placements.iter().map(|p| p.followers.len()).sum()
    }
}

/// Plan follower placement: bring every segment in `needs` up to
/// `factor` followers, drawing hosts from `hosts`.
///
/// Failure domains are nodes, so the guarantees are:
/// * a follower never lands on its segment's leader;
/// * a segment's followers are pairwise distinct (and distinct from any
///   `existing` survivor);
/// * hosts fill coldest-first ([`NodeLoadStat::heat`]), preferring idle
///   NICs ([`NodeLoadStat::net_heat`]) among equally cold hosts, with a
///   per-host assignment count spreading follower load across the
///   cluster instead of piling every copy onto the single coldest node.
///
/// A segment that cannot reach factor (not enough distinct eligible
/// hosts) gets as many followers as exist — the plan never invents a
/// co-located copy to hit the number.
pub fn plan_replicas(needs: &[ReplicaNeed], hosts: &[NodeLoadStat], factor: usize) -> ReplicaPlan {
    let mut plan = ReplicaPlan::default();
    if factor == 0 {
        return plan;
    }
    // One row per host, deterministic: duplicates collapse to the first.
    let mut pool: Vec<&NodeLoadStat> = hosts.iter().collect();
    pool.sort_by_key(|h| h.node);
    let mut seen = std::collections::BTreeSet::new();
    pool.retain(|h| seen.insert(h.node));
    let mut assigned: BTreeMap<NodeId, usize> = BTreeMap::new();

    for need in needs {
        if need.existing.len() >= factor {
            continue;
        }
        let deficit = factor - need.existing.len();
        let mut followers = Vec::with_capacity(deficit);
        for _ in 0..deficit {
            let pick = pool
                .iter()
                .filter(|h| {
                    h.node != need.leader
                        && !need.existing.contains(&h.node)
                        && !followers.contains(&h.node)
                })
                .min_by(|a, b| {
                    let (ca, cb) = (
                        assigned.get(&a.node).copied().unwrap_or(0),
                        assigned.get(&b.node).copied().unwrap_or(0),
                    );
                    ca.cmp(&cb)
                        .then_with(|| {
                            a.heat
                                .partial_cmp(&b.heat)
                                .unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .then_with(|| {
                            a.net_heat
                                .partial_cmp(&b.net_heat)
                                .unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .then_with(|| a.node.cmp(&b.node))
                })
                .map(|h| h.node);
            let Some(host) = pick else {
                break;
            };
            *assigned.entry(host).or_insert(0) += 1;
            followers.push(host);
        }
        if !followers.is_empty() {
            plan.placements.push(ReplicaPlacement {
                seg: need.seg,
                leader: need.leader,
                followers,
            });
        }
    }
    plan
}

/// One segment's *current* replication state, as planning input for a
/// replica-aware drain: which node leads it and which nodes hold its
/// follower copies (both the ones staying and the ones about to drain).
#[derive(Debug, Clone)]
pub struct ReplicaSite {
    /// The replicated segment.
    pub seg: SegmentId,
    /// Its current leader.
    pub leader: NodeId,
    /// All current follower hosts.
    pub followers: Vec<NodeId>,
}

/// One planned follower re-home: the copy on `from` (a draining node) is
/// replaced by a fresh copy shipped from `leader` to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FollowerRehome {
    /// The segment whose copy moves.
    pub seg: SegmentId,
    /// The segment's leader *after* the drain's leader moves execute —
    /// the source of the backfill copy.
    pub leader: NodeId,
    /// Draining node losing the copy.
    pub from: NodeId,
    /// Surviving node gaining the copy.
    pub to: NodeId,
}

/// An atomic replica-aware drain: the leader moves emptying the drained
/// nodes *plus* the follower re-homes keeping every affected segment at
/// factor. Executing only half of it is the bug this plan exists to
/// prevent.
#[derive(Debug, Clone)]
pub struct DrainPlan {
    /// Leader moves emptying the drained nodes (LPT onto the coldest
    /// survivors, preferring destinations that do not already hold a
    /// follower copy of the moving segment).
    pub plan: Plan,
    /// Follower re-homes, one per follower copy the drain would orphan
    /// (coldest-first via [`plan_replicas`], never on the post-move
    /// leader).
    pub rehomes: Vec<FollowerRehome>,
    /// Follower copies found on the drained nodes.
    pub orphaned_copies: usize,
    /// Follower slots the plan could *not* cover: affected segments that
    /// would still sit below `factor` after every re-home lands (not
    /// enough distinct surviving hosts). Non-zero means the drain should
    /// be refused, not half-executed.
    pub uncovered: usize,
}

impl DrainPlan {
    /// True when every follower copy the drain would orphan has a
    /// replacement host — the drain can proceed without losing
    /// redundancy.
    pub fn is_fully_covered(&self) -> bool {
        self.uncovered == 0
    }
}

/// Plan a replica-aware scale-in drain: empty the `drain` nodes like
/// [`plan_drain`] *and*, in the same plan, re-home every follower copy
/// they host via [`plan_replicas`] so the drain never drops a segment
/// below `factor`.
///
/// Beyond [`plan_drain`]'s guarantees:
/// * a drained segment's leader move prefers destinations that do not
///   already hold one of its follower copies, so the move itself does
///   not silently evict a copy (falling back to a follower host only
///   when every survivor holds one);
/// * re-homes draw from `hosts` (minus the drained nodes), coldest
///   first, never the segment's post-move leader, never a surviving
///   follower host;
/// * segments already below factor before the drain are *not* topped up
///   here — background repair owns that backlog; the plan only preserves
///   the copies the drain would orphan, and reports what it could not
///   cover in [`DrainPlan::uncovered`].
pub fn plan_drain_replicated(
    stats: &[SegmentStat],
    drain: &[NodeId],
    remaining: &[NodeId],
    _cfg: &PlanConfig,
    sites: &[ReplicaSite],
    hosts: &[NodeLoadStat],
    factor: usize,
) -> DrainPlan {
    let site_of: BTreeMap<SegmentId, &ReplicaSite> = sites.iter().map(|s| (s.seg, s)).collect();

    // Leader moves: plan_drain's LPT loop, with a per-segment preference
    // for destinations outside the segment's follower set.
    let dests: Vec<NodeId> = remaining
        .iter()
        .copied()
        .filter(|n| !drain.contains(n))
        .collect();
    let mut domain: Vec<NodeId> = drain.iter().chain(dests.iter()).copied().collect();
    domain.sort_unstable();
    domain.dedup();
    let mut node_heat = heat_by_node(stats, &domain);
    let initial_max_heat = node_heat.values().copied().fold(0.0, f64::max);

    let mut moves = Vec::new();
    let mut bytes_planned = 0u64;
    let mut heat_planned = 0.0f64;
    let mut assigned_bytes: BTreeMap<NodeId, u64> = BTreeMap::new();

    if !dests.is_empty() {
        let mut evacuees: Vec<&SegmentStat> =
            stats.iter().filter(|s| drain.contains(&s.node)).collect();
        evacuees.sort_by(|a, b| {
            b.heat
                .partial_cmp(&a.heat)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| b.bytes.cmp(&a.bytes))
                .then_with(|| a.seg.cmp(&b.seg))
        });
        for seg in evacuees {
            let followers: &[NodeId] = site_of
                .get(&seg.seg)
                .map(|s| s.followers.as_slice())
                .unwrap_or(&[]);
            let preferred: Vec<NodeId> = dests
                .iter()
                .copied()
                .filter(|d| !followers.contains(d))
                .collect();
            let dest = coldest(&preferred, &node_heat, &assigned_bytes)
                .or_else(|| coldest(&dests, &node_heat, &assigned_bytes))
                .expect("dests non-empty");
            *node_heat.get_mut(&seg.node).expect("drain in domain") -= seg.heat;
            *node_heat.get_mut(&dest).expect("dest in domain") += seg.heat;
            *assigned_bytes.entry(dest).or_insert(0) += seg.bytes;
            bytes_planned += seg.bytes;
            heat_planned += seg.heat;
            moves.push(PlannedMove {
                seg: seg.seg,
                table: seg.table,
                range: seg.range,
                from: seg.node,
                to: dest,
            });
        }
    }

    // Follower re-homes: every copy hosted on a drained node gets a
    // replacement, planned against the *post-move* leaders so a backfill
    // source is never its own destination.
    let mut needs = Vec::new();
    let mut lost_by_seg: Vec<(SegmentId, Vec<NodeId>)> = Vec::new();
    let mut orphaned_copies = 0usize;
    for site in sites {
        let lost: Vec<NodeId> = site
            .followers
            .iter()
            .copied()
            .filter(|f| drain.contains(f))
            .collect();
        if lost.is_empty() {
            continue;
        }
        orphaned_copies += lost.len();
        let existing: Vec<NodeId> = site
            .followers
            .iter()
            .copied()
            .filter(|f| !drain.contains(f))
            .collect();
        let leader = moves
            .iter()
            .find(|m| m.seg == site.seg)
            .map(|m| m.to)
            .unwrap_or(site.leader);
        needs.push(ReplicaNeed {
            seg: site.seg,
            leader,
            existing,
        });
        lost_by_seg.push((site.seg, lost));
    }
    let host_pool: Vec<NodeLoadStat> = hosts
        .iter()
        .copied()
        .filter(|h| !drain.contains(&h.node))
        .collect();
    let rp = plan_replicas(&needs, &host_pool, factor);

    let mut rehomes = Vec::new();
    let mut uncovered = 0usize;
    for (need, (seg, lost)) in needs.iter().zip(lost_by_seg.iter()) {
        let planned: &[NodeId] = rp
            .placements
            .iter()
            .find(|p| p.seg == *seg)
            .map(|p| p.followers.as_slice())
            .unwrap_or(&[]);
        // Pair each orphaned copy with a planned host; extra plan slots
        // (pre-existing deficit top-ups) are left to background repair.
        for (from, to) in lost.iter().zip(planned.iter()) {
            rehomes.push(FollowerRehome {
                seg: *seg,
                leader: need.leader,
                from: *from,
                to: *to,
            });
        }
        let executed = lost.len().min(planned.len());
        let kept = need.existing.len() + executed;
        let pre_drain = need.existing.len() + lost.len();
        uncovered += pre_drain.min(factor).saturating_sub(kept);
    }

    DrainPlan {
        plan: Plan {
            planner: Planner::HeatAware,
            moves,
            bytes_planned,
            heat_planned,
            predicted: node_heat,
            initial_max_heat,
        },
        rehomes,
        orphaned_copies,
        uncovered,
    }
}

/// The legacy fraction heuristic expressed in planner terms, for
/// apples-to-apples comparison: per (table, source), keep the lower
/// `1 − fraction` of key-ordered segments and move the rest to targets
/// round-robin by source index.
pub fn plan_fraction(
    stats: &[SegmentStat],
    fraction: f64,
    sources: &[NodeId],
    targets: &[NodeId],
) -> Plan {
    let mut domain: Vec<NodeId> = sources.iter().chain(targets.iter()).copied().collect();
    domain.sort_unstable();
    domain.dedup();
    let mut node_heat = heat_by_node(stats, &domain);
    let initial_max_heat = node_heat.values().copied().fold(0.0, f64::max);

    let mut moves = Vec::new();
    let mut bytes_planned = 0u64;
    let mut heat_planned = 0.0f64;
    if targets.is_empty() {
        return Plan {
            planner: Planner::Fraction,
            moves,
            bytes_planned,
            heat_planned,
            predicted: node_heat,
            initial_max_heat,
        };
    }
    for (i, &src) in sources.iter().enumerate() {
        let to = targets[i % targets.len()];
        let mut tables: Vec<TableId> = stats
            .iter()
            .filter(|s| s.node == src)
            .map(|s| s.table)
            .collect();
        tables.sort_unstable();
        tables.dedup();
        for table in tables {
            let mut segs: Vec<&SegmentStat> = stats
                .iter()
                .filter(|s| s.node == src && s.table == table)
                .collect();
            segs.sort_by_key(|s| (s.range.start, s.seg));
            let keep = ((segs.len() as f64) * (1.0 - fraction)).round() as usize;
            for s in segs.into_iter().skip(keep) {
                *node_heat.get_mut(&src).expect("source in domain") -= s.heat;
                *node_heat.get_mut(&to).expect("target in domain") += s.heat;
                bytes_planned += s.bytes;
                heat_planned += s.heat;
                moves.push(PlannedMove {
                    seg: s.seg,
                    table: s.table,
                    range: s.range,
                    from: src,
                    to,
                });
            }
        }
    }

    Plan {
        planner: Planner::Fraction,
        moves,
        bytes_planned,
        heat_planned,
        predicted: node_heat,
        initial_max_heat,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wattdb_common::Key;

    fn stat(seg: u64, node: u16, bytes: u64, heat: f64) -> SegmentStat {
        SegmentStat {
            seg: SegmentId(seg),
            table: TableId(1),
            range: KeyRange::new(Key(seg * 100), Key(seg * 100 + 100)),
            node: NodeId(node),
            bytes,
            heat,
        }
    }

    fn max_heat(plan: &Plan) -> f64 {
        plan.predicted_max_heat()
    }

    #[test]
    fn scale_out_balances_single_hot_source() {
        // Four equal segments, all heat on node 0, one fresh target.
        let stats: Vec<_> = (0..4).map(|i| stat(i, 0, 100, 1.0)).collect();
        let plan = plan_scale_out(&stats, &[NodeId(0)], &[NodeId(1)], &PlanConfig::default());
        assert_eq!(plan.moves.len(), 2, "half the heat moves: {plan:?}");
        assert!(plan.moves.iter().all(|m| m.to == NodeId(1)));
        assert!((max_heat(&plan) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn scale_out_prefers_heat_per_byte() {
        // A huge lukewarm segment vs small hot ones: the small hot ones
        // ship first, buying balance with far fewer bytes.
        let stats = vec![
            stat(0, 0, 10_000, 3.0),
            stat(1, 0, 100, 2.5),
            stat(2, 0, 100, 2.5),
            stat(3, 0, 100, 2.0),
        ];
        let plan = plan_scale_out(&stats, &[NodeId(0)], &[NodeId(1)], &PlanConfig::default());
        assert!(
            plan.moves.iter().all(|m| m.seg != SegmentId(0)),
            "the huge segment stays: {plan:?}"
        );
        assert!(plan.bytes_planned <= 300);
        assert!(max_heat(&plan) < 10.0, "balance improved");
    }

    #[test]
    fn scale_out_never_ships_cold_segments() {
        let stats = vec![
            stat(0, 0, 100, 4.0),
            stat(1, 0, 100, 0.0),
            stat(2, 0, 100, 0.0),
        ];
        let plan = plan_scale_out(&stats, &[NodeId(0)], &[NodeId(1)], &PlanConfig::default());
        assert!(
            plan.moves.iter().all(|m| m.seg == SegmentId(0)),
            "only the hot segment may ship: {plan:?}"
        );
    }

    #[test]
    fn scale_out_without_targets_is_empty() {
        let stats = vec![stat(0, 0, 100, 4.0)];
        let plan = plan_scale_out(&stats, &[NodeId(0)], &[], &PlanConfig::default());
        assert!(plan.is_empty());
    }

    #[test]
    fn scale_out_never_worsens_the_maximum() {
        // One indivisible hot segment: moving it would only shift the
        // hotspot, so the plan leaves it.
        let stats = vec![stat(0, 0, 100, 10.0)];
        let plan = plan_scale_out(&stats, &[NodeId(0)], &[NodeId(1)], &PlanConfig::default());
        assert!(plan.is_empty(), "{plan:?}");
        assert!((max_heat(&plan) - plan.initial_max_heat).abs() < 1e-9);
    }

    #[test]
    fn drain_moves_everything_and_spreads_heat() {
        let stats = vec![
            stat(0, 2, 100, 8.0),
            stat(1, 2, 100, 6.0),
            stat(2, 2, 100, 1.0),
            stat(3, 2, 100, 1.0),
            stat(4, 0, 100, 1.0), // survivor's existing load
        ];
        let plan = plan_drain(
            &stats,
            &[NodeId(2)],
            &[NodeId(0), NodeId(1)],
            &PlanConfig::default(),
        );
        assert_eq!(plan.moves.len(), 4, "every segment leaves the drain");
        assert!(plan.moves.iter().all(|m| m.to != NodeId(2)));
        // LPT: the two hot segments land on different survivors.
        let hot0 = plan.moves.iter().find(|m| m.seg == SegmentId(0)).unwrap();
        let hot1 = plan.moves.iter().find(|m| m.seg == SegmentId(1)).unwrap();
        assert_ne!(hot0.to, hot1.to, "hot segments spread: {plan:?}");
        assert_eq!(plan.predicted[&NodeId(2)], 0.0);
    }

    #[test]
    fn fraction_mirrors_the_legacy_heuristic() {
        let stats: Vec<_> = (0..4).map(|i| stat(i, 0, 100, i as f64)).collect();
        let plan = plan_fraction(&stats, 0.5, &[NodeId(0)], &[NodeId(1)]);
        // Keep the lower half in key order, move the upper half.
        let moved: Vec<u64> = plan.moves.iter().map(|m| m.seg.raw()).collect();
        assert_eq!(moved, vec![2, 3]);
        assert_eq!(plan.bytes_planned, 200);
    }

    #[test]
    fn skewed_heat_heat_aware_beats_fraction_on_both_axes() {
        // Hot range at the *bottom* of the key space (the fraction
        // heuristic moves the top): heat-aware must win on max heat
        // without shipping more bytes.
        let mut stats = Vec::new();
        for i in 0..8 {
            let heat = if i < 2 { 10.0 } else { 0.5 };
            stats.push(stat(i, 0, 100, heat));
        }
        let cfg = PlanConfig { tolerance: 0.1 };
        let heat_plan = plan_scale_out(&stats, &[NodeId(0)], &[NodeId(1)], &cfg);
        let frac_plan = plan_fraction(&stats, 0.5, &[NodeId(0)], &[NodeId(1)]);
        assert!(
            max_heat(&heat_plan) < max_heat(&frac_plan),
            "heat-aware {} vs fraction {}",
            max_heat(&heat_plan),
            max_heat(&frac_plan)
        );
        assert!(heat_plan.bytes_planned <= frac_plan.bytes_planned);
    }

    // ------------------------------------------------------------ helpers

    fn load(node: u16, heat: f64, net: f64) -> NodeLoadStat {
        NodeLoadStat {
            node: NodeId(node),
            heat,
            net_heat: net,
        }
    }

    fn cand(node: u16, heat: f64, standby: bool) -> HelperCandidate {
        HelperCandidate {
            node: NodeId(node),
            heat,
            net: 0.0,
            standby,
        }
    }

    #[test]
    fn helpers_go_to_the_net_heaviest_sources() {
        // Node 1 is hottest overall but node 2 carries the most *net*
        // heat: node 2 gets the first (standby) helper.
        let sources = [load(1, 100.0, 5.0), load(2, 60.0, 40.0)];
        let cands = [cand(3, 0.0, true), cand(4, 0.0, true)];
        let plan = plan_helpers(&sources, &cands, &[], &HelperConfig::default());
        assert_eq!(plan.assignments.len(), 2);
        assert_eq!(plan.assignments[0].source, NodeId(2));
        assert_eq!(plan.assignments[0].helper, NodeId(3));
        assert_eq!(plan.assignments[1].source, NodeId(1));
        assert_eq!(plan.assignments[1].helper, NodeId(4));
        assert!((plan.predicted_relief - 45.0).abs() < 1e-9);
    }

    #[test]
    fn helper_pool_prefers_standbys_then_coldest_actives() {
        let sources = [load(1, 50.0, 50.0)];
        // A cold active, an even colder active, and one standby: the
        // standby wins despite the actives' low heat.
        let cands = [cand(2, 1.0, false), cand(3, 0.5, false), cand(4, 0.0, true)];
        let plan = plan_helpers(&sources, &cands, &[], &HelperConfig::default());
        assert_eq!(plan.helpers(), vec![NodeId(4)]);
        // Without the standby, the coldest active is next in line.
        let plan = plan_helpers(&sources, &cands[..2], &[], &HelperConfig::default());
        assert_eq!(plan.helpers(), vec![NodeId(3)]);
    }

    #[test]
    fn helper_pool_prefers_idle_nics_among_actives() {
        let sources = [load(1, 50.0, 50.0)];
        // Node 2 is colder overall but its NIC is saturated; node 3 runs
        // hotter with an idle NIC. The idle NIC wins — a busy NIC cannot
        // absorb the source's shipping traffic.
        let cands = [
            HelperCandidate {
                node: NodeId(2),
                heat: 1.0,
                net: 8.0,
                standby: false,
            },
            HelperCandidate {
                node: NodeId(3),
                heat: 2.0,
                net: 0.0,
                standby: false,
            },
        ];
        let plan = plan_helpers(&sources, &cands, &[], &HelperConfig::default());
        assert_eq!(plan.helpers(), vec![NodeId(3)], "{plan:?}");
        // A standby still outranks any active, busy NIC or not.
        let with_standby = [
            cands[1],
            HelperCandidate {
                node: NodeId(4),
                heat: 0.0,
                net: 0.0,
                standby: true,
            },
        ];
        let plan = plan_helpers(&sources, &with_standby, &[], &HelperConfig::default());
        assert_eq!(plan.helpers(), vec![NodeId(4)]);
    }

    #[test]
    fn helper_plan_records_the_candidate_ranking() {
        // The plan carries the pool in preference order — standby first,
        // then idle-NIC, then coldest — so the helper span can show why
        // the winner won.
        let sources = [load(1, 50.0, 50.0)];
        let cands = [
            HelperCandidate {
                node: NodeId(2),
                heat: 1.0,
                net: 8.0,
                standby: false,
            },
            HelperCandidate {
                node: NodeId(3),
                heat: 2.0,
                net: 0.0,
                standby: false,
            },
            HelperCandidate {
                node: NodeId(4),
                heat: 0.0,
                net: 0.0,
                standby: true,
            },
        ];
        let plan = plan_helpers(&sources, &cands, &[], &HelperConfig::default());
        assert_eq!(
            plan.ranking,
            vec![
                "n4 standby net=0.000 heat=0.000",
                "n3 active net=0.000 heat=2.000",
                "n2 active net=8.000 heat=1.000",
            ]
        );
        assert_eq!(plan.helpers(), vec![NodeId(4)]);
    }

    #[test]
    fn helpers_never_come_from_excluded_or_source_nodes() {
        let sources = [load(1, 50.0, 50.0), load(2, 40.0, 30.0)];
        let cands = [
            cand(1, 50.0, false), // a source — never helps itself
            cand(2, 40.0, false), // the other source
            cand(3, 0.0, true),   // excluded (e.g. migration target)
            cand(4, 0.0, true),
        ];
        let plan = plan_helpers(
            &sources,
            &cands,
            &[NodeId(3)],
            &HelperConfig {
                max_helpers: 4,
                min_net_heat: 0.0,
            },
        );
        assert_eq!(plan.helpers(), vec![NodeId(4)], "{plan:?}");
        assert_eq!(plan.sources(), vec![NodeId(1)]);
    }

    #[test]
    fn master_helps_only_as_last_resort() {
        let sources = [load(1, 50.0, 50.0)];
        let with_alternative = [cand(0, 0.0, false), cand(2, 5.0, false)];
        let plan = plan_helpers(&sources, &with_alternative, &[], &HelperConfig::default());
        assert_eq!(plan.helpers(), vec![NodeId(2)], "master spared: {plan:?}");
        let master_only = [cand(0, 0.0, false)];
        let plan = plan_helpers(&sources, &master_only, &[], &HelperConfig::default());
        assert_eq!(plan.helpers(), vec![NodeId(0)], "last resort: {plan:?}");
    }

    #[test]
    fn duplicate_rows_collapse_to_the_best_ranked_occurrence() {
        // Duplicate source rows sort apart by their heats; the node must
        // still collect exactly one helper (from its best-ranked row).
        let sources = [load(1, 50.0, 10.0), load(2, 40.0, 5.0), load(1, 10.0, 3.0)];
        let cands = [cand(3, 0.0, true), cand(4, 0.0, true), cand(5, 0.0, true)];
        let plan = plan_helpers(
            &sources,
            &cands,
            &[],
            &HelperConfig {
                max_helpers: 3,
                min_net_heat: 0.0,
            },
        );
        assert_eq!(plan.sources(), vec![NodeId(1), NodeId(2)], "{plan:?}");
        // Same for candidates: a helper listed twice (with differing
        // heats) serves at most one source.
        let sources = [load(1, 50.0, 10.0), load(2, 40.0, 5.0)];
        let dup_cands = [
            cand(3, 2.0, false),
            cand(3, 1.0, false),
            cand(4, 5.0, false),
        ];
        let plan = plan_helpers(
            &sources,
            &dup_cands,
            &[],
            &HelperConfig {
                max_helpers: 3,
                min_net_heat: 0.0,
            },
        );
        assert_eq!(plan.helpers(), vec![NodeId(3), NodeId(4)], "{plan:?}");
    }

    #[test]
    fn net_heat_floor_and_cap_bound_the_plan() {
        let sources = [load(1, 9.0, 9.0), load(2, 8.0, 8.0), load(3, 1.0, 0.4)];
        let cands = [cand(4, 0.0, true), cand(5, 0.0, true), cand(6, 0.0, true)];
        // The floor silences node 3; the cap keeps one assignment.
        let plan = plan_helpers(
            &sources,
            &cands,
            &[],
            &HelperConfig {
                max_helpers: 1,
                min_net_heat: 1.0,
            },
        );
        assert_eq!(plan.assignments.len(), 1);
        assert_eq!(plan.assignments[0].source, NodeId(1));
        // A zero-net source still gets a helper under the zero floor (log
        // shipping relieves its commit path), ranked behind any net-heavy
        // source — but any positive floor excludes it.
        let cpu_only = [load(1, 9.0, 0.0), load(2, 5.0, 3.0)];
        let plan = plan_helpers(&cpu_only, &cands, &[], &HelperConfig::default());
        assert_eq!(plan.sources(), vec![NodeId(2), NodeId(1)], "{plan:?}");
        let plan = plan_helpers(
            &cpu_only,
            &cands,
            &[],
            &HelperConfig {
                max_helpers: 2,
                min_net_heat: 0.5,
            },
        );
        assert_eq!(plan.sources(), vec![NodeId(2)], "{plan:?}");
        // A cold source (no heat at all) never gets one.
        let cold = [load(1, 0.0, 0.0)];
        let plan = plan_helpers(&cold, &cands, &[], &HelperConfig::default());
        assert!(plan.is_empty(), "{plan:?}");
        // max_helpers = 0 disables planning outright.
        let plan = plan_helpers(
            &sources,
            &cands,
            &[],
            &HelperConfig {
                max_helpers: 0,
                min_net_heat: 0.0,
            },
        );
        assert!(plan.is_empty());
    }

    // ----------------------------------------------------------- replicas

    fn need(seg: u64, leader: u16, existing: &[u16]) -> ReplicaNeed {
        ReplicaNeed {
            seg: SegmentId(seg),
            leader: NodeId(leader),
            existing: existing.iter().map(|&n| NodeId(n)).collect(),
        }
    }

    #[test]
    fn replicas_never_co_locate_with_the_leader_and_stay_distinct() {
        let hosts = [load(1, 5.0, 0.0), load(2, 1.0, 0.0), load(3, 2.0, 0.0)];
        let needs = [need(1, 1, &[]), need(2, 2, &[])];
        let plan = plan_replicas(&needs, &hosts, 2);
        assert_eq!(plan.additions(), 4);
        for p in &plan.placements {
            assert!(!p.followers.contains(&p.leader), "{plan:?}");
            let mut uniq = p.followers.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), p.followers.len(), "{plan:?}");
        }
    }

    #[test]
    fn replicas_fill_coldest_first_and_spread_load() {
        // Three segments on node 1, factor 1: the followers spread across
        // the other hosts (coldest first) instead of piling onto one.
        let hosts = [
            load(1, 9.0, 0.0),
            load(2, 1.0, 0.0),
            load(3, 2.0, 0.0),
            load(4, 3.0, 0.0),
        ];
        let needs = [need(1, 1, &[]), need(2, 1, &[]), need(3, 1, &[])];
        let plan = plan_replicas(&needs, &hosts, 1);
        let picked: Vec<NodeId> = plan
            .placements
            .iter()
            .flat_map(|p| p.followers.iter().copied())
            .collect();
        assert_eq!(
            picked,
            vec![NodeId(2), NodeId(3), NodeId(4)],
            "coldest first, spread by assignment count: {plan:?}"
        );
    }

    #[test]
    fn replicas_prefer_idle_nics_among_equally_cold_hosts() {
        // Two standby-cold hosts; node 3's NIC already carries traffic.
        let hosts = [load(2, 0.0, 4.0), load(3, 0.0, 0.0)];
        let plan = plan_replicas(&[need(1, 1, &[])], &hosts, 1);
        // Equal heat → the idle NIC wins the tie.
        assert_eq!(plan.placements[0].followers, vec![NodeId(3)], "{plan:?}");
    }

    #[test]
    fn replica_deficit_only_and_capacity_bounds() {
        let hosts = [load(2, 0.0, 0.0), load(3, 1.0, 0.0)];
        // Already at factor: nothing planned.
        let plan = plan_replicas(&[need(1, 1, &[2])], &hosts, 1);
        assert!(plan.is_empty(), "{plan:?}");
        // Deficit of one: only the missing follower is added, avoiding
        // the survivor.
        let plan = plan_replicas(&[need(1, 1, &[2])], &hosts, 2);
        assert_eq!(plan.placements[0].followers, vec![NodeId(3)]);
        // Not enough distinct hosts: as many as exist, never a co-located
        // copy to hit the number.
        let plan = plan_replicas(&[need(1, 1, &[])], &hosts, 5);
        assert_eq!(plan.placements[0].followers, vec![NodeId(2), NodeId(3)]);
        // Factor zero disables planning.
        assert!(plan_replicas(&[need(1, 1, &[])], &hosts, 0).is_empty());
        // The leader being the only host yields nothing.
        let only_leader = [load(1, 0.0, 0.0)];
        assert!(plan_replicas(&[need(1, 1, &[])], &only_leader, 1).is_empty());
    }

    // ------------------------------------------------- replica-aware drain

    fn site(seg: u64, leader: u16, followers: &[u16]) -> ReplicaSite {
        ReplicaSite {
            seg: SegmentId(seg),
            leader: NodeId(leader),
            followers: followers.iter().map(|&n| NodeId(n)).collect(),
        }
    }

    #[test]
    fn replicated_drain_rehomes_every_orphaned_copy() {
        // Node 3 drains. It leads segment 30 and follows segments 10/20
        // (led by nodes 1 and 2). The plan must move segment 30 out AND
        // re-home both follower copies onto the survivors.
        let stats = vec![
            stat(10, 1, 100, 2.0),
            stat(20, 2, 100, 2.0),
            stat(30, 3, 100, 1.0),
        ];
        let sites = [site(10, 1, &[3]), site(20, 2, &[3]), site(30, 3, &[1])];
        let hosts = [load(1, 2.0, 0.0), load(2, 2.0, 0.0), load(4, 0.0, 0.0)];
        let dp = plan_drain_replicated(
            &stats,
            &[NodeId(3)],
            &[NodeId(1), NodeId(2), NodeId(4)],
            &PlanConfig::default(),
            &sites,
            &hosts,
            1,
        );
        assert_eq!(dp.plan.moves.len(), 1, "segment 30 leaves: {dp:?}");
        assert_eq!(dp.orphaned_copies, 2);
        assert_eq!(dp.rehomes.len(), 2, "{dp:?}");
        assert!(dp.is_fully_covered());
        for r in &dp.rehomes {
            assert_eq!(r.from, NodeId(3));
            assert_ne!(r.to, NodeId(3), "never back onto the drain: {dp:?}");
            assert_ne!(r.to, r.leader, "never on the leader: {dp:?}");
        }
    }

    #[test]
    fn replicated_drain_leader_moves_avoid_follower_hosts() {
        // Segment 30 (led by draining node 3) has its follower copy on
        // node 1. Node 1 is the coldest survivor, but landing the leader
        // there would evict the copy — node 2 must win instead.
        let stats = vec![stat(30, 3, 100, 1.0), stat(40, 2, 100, 0.5)];
        let sites = [site(30, 3, &[1])];
        let hosts = [load(1, 0.0, 0.0), load(2, 0.5, 0.0)];
        let dp = plan_drain_replicated(
            &stats,
            &[NodeId(3)],
            &[NodeId(1), NodeId(2)],
            &PlanConfig::default(),
            &sites,
            &hosts,
            1,
        );
        let mv = dp
            .plan
            .moves
            .iter()
            .find(|m| m.seg == SegmentId(30))
            .unwrap();
        assert_eq!(mv.to, NodeId(2), "follower host avoided: {dp:?}");
        // With node 2 gone, the follower host is the only destination —
        // the fallback still empties the drain rather than wedging.
        let dp = plan_drain_replicated(
            &stats,
            &[NodeId(3)],
            &[NodeId(1)],
            &PlanConfig::default(),
            &sites,
            &hosts[..1],
            1,
        );
        let mv = dp
            .plan
            .moves
            .iter()
            .find(|m| m.seg == SegmentId(30))
            .unwrap();
        assert_eq!(mv.to, NodeId(1), "fallback: {dp:?}");
    }

    #[test]
    fn replicated_drain_rehomes_against_post_move_leaders() {
        // Segment 30's leader moves from draining node 3 onto node 1; its
        // follower copy (also on node 3) must re-home away from the NEW
        // leader, not the old one.
        let stats = vec![stat(30, 3, 100, 1.0)];
        let sites = [site(30, 3, &[4])];
        let hosts = [load(1, 0.0, 0.0), load(4, 0.0, 0.0)];
        let dp = plan_drain_replicated(
            &stats,
            &[NodeId(3), NodeId(4)],
            &[NodeId(1)],
            &PlanConfig::default(),
            &sites,
            &hosts,
            1,
        );
        // Leader lands on node 1; the follower copy on draining node 4
        // has no host left (only survivor IS the new leader): uncovered.
        assert_eq!(dp.plan.moves[0].to, NodeId(1));
        assert_eq!(dp.orphaned_copies, 1);
        assert!(dp.rehomes.is_empty(), "{dp:?}");
        assert_eq!(dp.uncovered, 1, "refusal signal: {dp:?}");
        assert!(!dp.is_fully_covered());
    }

    #[test]
    fn replicated_drain_leaves_pre_existing_deficits_to_repair() {
        // Factor 2 but segment 10 already lost one follower before the
        // drain: the plan re-homes only the copy the drain orphans; the
        // old deficit stays background repair's job and does not block.
        let stats = vec![stat(10, 1, 100, 1.0)];
        let sites = [site(10, 1, &[3])];
        let hosts = [load(2, 0.0, 0.0), load(4, 0.0, 0.0), load(5, 0.0, 0.0)];
        let dp = plan_drain_replicated(
            &stats,
            &[NodeId(3)],
            &[NodeId(2), NodeId(4), NodeId(5)],
            &PlanConfig::default(),
            &sites,
            &hosts,
            2,
        );
        assert_eq!(
            dp.rehomes.len(),
            1,
            "one orphaned copy, one re-home: {dp:?}"
        );
        assert!(dp.is_fully_covered(), "old deficit never blocks: {dp:?}");
    }

    #[test]
    fn greedy_never_ships_more_than_fraction_on_uniform_segments() {
        // Brute-force sweep (single source, single target, equal-size
        // segments): the stop-at-ceiling + strict-improvement guards keep
        // the heat-aware plan at or under the fraction plan's bytes.
        let mut rng = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for case in 0..500 {
            let n = 1 + (next() % 16) as usize;
            let stats: Vec<_> = (0..n)
                .map(|i| stat(i as u64, 0, 100, (next() % 100) as f64))
                .collect();
            let tol = (case % 4) as f64 * 0.1;
            let heat_plan = plan_scale_out(
                &stats,
                &[NodeId(0)],
                &[NodeId(1)],
                &PlanConfig { tolerance: tol },
            );
            let frac_plan = plan_fraction(&stats, 0.5, &[NodeId(0)], &[NodeId(1)]);
            assert!(
                heat_plan.bytes_planned <= frac_plan.bytes_planned,
                "case {case}: heat {} > fraction {} for {stats:?}",
                heat_plan.bytes_planned,
                frac_plan.bytes_planned
            );
        }
    }
}
