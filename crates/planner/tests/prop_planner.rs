//! Property tests for the heat-aware planner: conservation, target
//! discipline, the balance-tolerance bound, and the byte envelope against
//! the legacy fraction heuristic.

use std::collections::BTreeSet;

use proptest::prelude::*;
use wattdb_common::{Key, KeyRange, NodeId, SegmentId, TableId};
use wattdb_planner::{plan_drain, plan_fraction, plan_scale_out, PlanConfig, SegmentStat};

/// Build one segment per heat entry, laid out in key order on `node`.
fn stats_on(heats: &[f64], node: u16, bytes: u64, seg_base: u64) -> Vec<SegmentStat> {
    heats
        .iter()
        .enumerate()
        .map(|(i, &heat)| {
            let id = seg_base + i as u64;
            SegmentStat {
                seg: SegmentId(id),
                table: TableId(1),
                range: KeyRange::new(Key(id * 1000), Key(id * 1000 + 1000)),
                node: NodeId(node),
                bytes,
                heat,
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every move relocates an existing segment exactly once, from the
    /// node that holds it, onto a target — never onto a source.
    #[test]
    fn scale_out_conserves_segments_and_never_targets_a_source(
        heats in proptest::collection::vec(0.0f64..100.0, 1..24),
        n_sources in 1usize..4,
        n_targets in 1usize..3,
    ) {
        // Spread the segments round-robin over the sources.
        let mut stats = Vec::new();
        for (i, &h) in heats.iter().enumerate() {
            let node = (i % n_sources) as u16;
            stats.extend(stats_on(&[h], node, 100, i as u64));
        }
        let sources: Vec<NodeId> = (0..n_sources as u16).map(NodeId).collect();
        let targets: Vec<NodeId> =
            (10..10 + n_targets as u16).map(NodeId).collect();
        let plan = plan_scale_out(&stats, &sources, &targets, &PlanConfig::default());

        let mut seen = BTreeSet::new();
        for m in &plan.moves {
            prop_assert!(seen.insert(m.seg), "segment moved twice: {m:?}");
            let stat = stats.iter().find(|s| s.seg == m.seg);
            prop_assert!(stat.is_some(), "planned a segment that does not exist");
            prop_assert_eq!(stat.unwrap().node, m.from, "move originates at the holder");
            prop_assert!(targets.contains(&m.to), "destination must be a target");
            prop_assert!(!sources.contains(&m.to), "never target a source");
        }
        // Heat is conserved across the predicted placement.
        let total: f64 = heats.iter().sum();
        let predicted: f64 = plan.predicted.values().sum();
        prop_assert!((total - predicted).abs() < 1e-6,
            "heat conserved: {total} vs {predicted}");
        // The plan never makes the hottest node hotter.
        prop_assert!(plan.predicted_max_heat() <= plan.initial_max_heat + 1e-9);
    }

    /// With a fresh (empty) target, the predicted maximum respects the
    /// classic greedy bound: mean × (1 + tolerance) + hottest segment.
    #[test]
    fn scale_out_respects_the_tolerance_bound(
        heats in proptest::collection::vec(0.0f64..100.0, 1..24),
        tol in 0.0f64..0.5,
    ) {
        let stats = stats_on(&heats, 0, 100, 0);
        let plan = plan_scale_out(
            &stats,
            &[NodeId(0)],
            &[NodeId(1)],
            &PlanConfig { tolerance: tol },
        );
        let total: f64 = heats.iter().sum();
        let mean = total / 2.0;
        let hottest = heats.iter().copied().fold(0.0, f64::max);
        prop_assert!(
            plan.predicted_max_heat() <= mean * (1.0 + tol) + hottest + 1e-6,
            "max {} vs bound {} (mean {mean}, hottest {hottest}, tol {tol})",
            plan.predicted_max_heat(),
            mean * (1.0 + tol) + hottest
        );
    }

    /// For the same balance goal on uniform-size segments (the paper's
    /// fixed 32 MB segments), the heat-aware plan never ships more bytes
    /// than the legacy fraction plan — and achieves a max heat at least as
    /// good.
    #[test]
    fn scale_out_ships_no_more_bytes_than_fraction(
        heats in proptest::collection::vec(0.0f64..100.0, 1..24),
        tol in 0.0f64..0.5,
    ) {
        let stats = stats_on(&heats, 0, 4096, 0);
        let heat_plan = plan_scale_out(
            &stats,
            &[NodeId(0)],
            &[NodeId(1)],
            &PlanConfig { tolerance: tol },
        );
        let frac_plan = plan_fraction(&stats, 0.5, &[NodeId(0)], &[NodeId(1)]);
        prop_assert!(
            heat_plan.bytes_planned <= frac_plan.bytes_planned,
            "heat {} > fraction {} bytes for heats {heats:?}",
            heat_plan.bytes_planned,
            frac_plan.bytes_planned
        );
        // (Greedy hottest-first can occasionally tie or narrowly lose the
        // *balance* race to a lucky fraction subset — e.g. heats
        // [6,5,6,5] — so balance superiority is asserted only for skewed
        // workloads, in the deterministic tests.)
    }

    /// A drain plan evacuates every segment of the drained nodes, exactly
    /// once, onto surviving nodes only.
    #[test]
    fn drain_evacuates_everything(
        heats in proptest::collection::vec(0.0f64..100.0, 1..24),
        survivor_heats in proptest::collection::vec(0.0f64..100.0, 1..8),
    ) {
        let mut stats = stats_on(&heats, 9, 100, 0);
        stats.extend(stats_on(&survivor_heats, 1, 100, 1000));
        let plan = plan_drain(
            &stats,
            &[NodeId(9)],
            &[NodeId(1), NodeId(2)],
            &PlanConfig::default(),
        );
        prop_assert_eq!(plan.moves.len(), heats.len(), "every evacuee planned");
        let mut seen = BTreeSet::new();
        for m in &plan.moves {
            prop_assert!(seen.insert(m.seg));
            prop_assert_eq!(m.from, NodeId(9));
            prop_assert!(m.to == NodeId(1) || m.to == NodeId(2));
        }
        prop_assert!(
            plan.predicted[&NodeId(9)].abs() < 1e-6,
            "drained node ends cold: {}",
            plan.predicted[&NodeId(9)]
        );
    }
}
