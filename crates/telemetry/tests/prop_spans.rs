//! Property tests for the span collector invariants the exported
//! timeline relies on: ids are never reused, every span can be closed
//! (and then stays closed), child events always lie inside their
//! parent's bounds, and the ring bound holds under any interleaving.

use proptest::prelude::*;
use wattdb_common::SimTime;
use wattdb_telemetry::{parse_jsonl, SpanCollector, SpanId, Telemetry};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Drive the collector with an arbitrary interleaving of
    /// start/event/attr/end operations under a monotone clock, then
    /// close the stragglers: every span ends at or after its start,
    /// every event lies inside its span's bounds, ids are unique, and
    /// the ring never over-retains.
    #[test]
    fn span_invariants_hold_under_any_interleaving(
        ops in proptest::collection::vec(0u8..4, 1..120),
        capacity in 1usize..16,
    ) {
        let mut c = SpanCollector::new(capacity);
        let mut clock = 0u64;
        let mut live: Vec<SpanId> = Vec::new();
        let mut seen: Vec<SpanId> = Vec::new();
        for op in ops {
            clock += 1;
            let now = SimTime::from_secs(clock);
            match op {
                0 => {
                    let parent = live.last().copied();
                    let id = c.start_child("op", now, parent);
                    prop_assert!(!seen.contains(&id), "id {id} reused");
                    seen.push(id);
                    live.push(id);
                }
                1 => {
                    if let Some(&id) = live.last() {
                        c.add_event(id, now, "tick", vec![("clock".into(), clock.into())]);
                    }
                }
                2 => {
                    if let Some(&id) = live.last() {
                        c.set_attr(id, "latest", (clock as f64).into());
                    }
                }
                _ => {
                    if let Some(id) = live.pop() {
                        c.end(id, now);
                    }
                }
            }
        }
        // Close everything still open.
        for id in live.drain(..).rev() {
            clock += 1;
            c.end(id, SimTime::from_secs(clock));
        }
        prop_assert_eq!(c.open().count(), 0, "every span closes");
        prop_assert!(c.closed().count() <= capacity, "ring bound");
        prop_assert_eq!(
            c.closed().count() as u64 + c.dropped,
            c.started(),
            "closed + evicted covers every started span"
        );
        for span in c.closed() {
            let end = span.end.expect("closed span has an end");
            prop_assert!(span.start <= end, "span runs forward");
            for ev in &span.events {
                prop_assert!(
                    span.start <= ev.at && ev.at <= end,
                    "event at {:?} escapes span [{:?}, {:?}]",
                    ev.at,
                    span.start,
                    end
                );
            }
        }
    }

    /// Whatever ends up in the recorder, the JSONL export re-parses
    /// into the same spans (schema totality over arbitrary content).
    #[test]
    fn any_recorded_state_survives_the_jsonl_round_trip(
        names in proptest::collection::vec(0u8..4, 1..24),
        close_mask in proptest::collection::vec(0u8..2, 24),
    ) {
        let mut t = Telemetry::new();
        let labels = ["rebalance", "helpers", "failover", "power"];
        let mut ids = Vec::new();
        for (i, &n) in names.iter().enumerate() {
            let at = SimTime::from_secs(i as u64 + 1);
            let id = t.start_span(
                labels[n as usize],
                at,
                vec![
                    ("trigger".into(), "heat-skew".into()),
                    ("index".into(), (i as u64).into()),
                ],
            );
            ids.push(id);
        }
        for (i, &id) in ids.iter().enumerate() {
            if close_mask.get(i).copied().unwrap_or(0) == 1 {
                t.spans.end(id, SimTime::from_secs(100 + i as u64));
            }
        }
        let text = t.export_jsonl();
        let parsed = parse_jsonl(&text).unwrap();
        prop_assert_eq!(parsed.spans.len(), ids.len());
        let reopened: Vec<_> = parsed.spans.iter().filter(|s| s.end.is_none()).collect();
        prop_assert_eq!(reopened.len(), t.spans.open().count());
        for span in &parsed.spans {
            prop_assert_eq!(t.spans.get(span.id).unwrap(), span);
        }
    }
}
