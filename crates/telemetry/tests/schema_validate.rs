//! Schema validation for the exported timeline artifact.
//!
//! CI runs this after the planner shootout has written
//! `BENCH_timeline.jsonl` at the repo root: every line of the shipped
//! artifact must parse back into the typed span/sample/decision structs.
//! When the artifact is absent (plain `cargo test` before any bench
//! run), the test still validates a freshly generated export, so the
//! schema contract is always exercised.

use std::path::Path;

use wattdb_common::SimTime;
use wattdb_telemetry::{parse_jsonl, AttrValue, DecisionRecord, SignalVector, Telemetry};

fn artifact_path() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_timeline.jsonl")
}

#[test]
fn bench_timeline_artifact_is_schema_valid_when_present() {
    let path = artifact_path();
    let Ok(text) = std::fs::read_to_string(&path) else {
        eprintln!(
            "note: {} not present, skipping artifact pass",
            path.display()
        );
        return;
    };
    let parsed = parse_jsonl(&text)
        .unwrap_or_else(|e| panic!("{} failed schema validation: {e}", path.display()));
    let lines = text.lines().filter(|l| !l.trim().is_empty()).count();
    let objects = 1 + parsed.spans.len() + parsed.samples.len() + parsed.decisions.len();
    assert_eq!(lines, objects, "every line decodes into a typed struct");
    assert!(
        !parsed.samples.is_empty(),
        "the shootout timeline must carry window samples"
    );
    assert!(
        parsed
            .samples
            .iter()
            .any(|s| s.value("energy.wh_per_txn").is_some()),
        "samples must include Wh-per-committed-txn"
    );
}

#[test]
fn generated_export_round_trips_line_for_line() {
    let mut t = Telemetry::new();
    let span = t.start_span(
        "rebalance",
        SimTime::from_secs(5),
        vec![
            ("trigger".into(), AttrValue::Str("cpu-high".into())),
            ("planned_heat".into(), AttrValue::F64(0.61)),
        ],
    );
    t.spans.add_event(
        span,
        SimTime::from_secs(10),
        "boot",
        vec![("nodes".into(), AttrValue::U64(2))],
    );
    t.spans.end(span, SimTime::from_secs(30));
    t.registry.set_gauge("energy.wh_per_txn", 0.0021);
    t.registry.inc_counter("txn.completed", 420);
    t.registry.sample_window(SimTime::from_secs(5));
    t.timeline.push(DecisionRecord {
        window: 0,
        at: SimTime::from_secs(5),
        decision: "ScaleOut".into(),
        trigger: "cpu-high".into(),
        outcome: "applied".into(),
        signals: SignalVector::default(),
        predicted: Some(0.61),
        span: Some(span.0),
    });
    let text = t.export_jsonl();
    let parsed = parse_jsonl(&text).expect("generated export must be schema-valid");
    let lines = text.lines().count();
    let objects = 1 + parsed.spans.len() + parsed.samples.len() + parsed.decisions.len();
    assert_eq!(lines, objects);
    assert_eq!(parsed.explain(), t.explain());
}
