//! Per-window metrics registry.
//!
//! Instead of ad-hoc fields scattered across structs, the control plane
//! publishes **named** counters, gauges, and histograms here and the
//! monitoring loop freezes them once per window into a [`WindowSample`]
//! time series. Names are dotted paths (`"txn.throughput"`,
//! `"node.3.cpu"`, `"energy.wh_per_txn"`); everything is keyed through
//! `BTreeMap`s so a sample serializes in one deterministic order.

use std::collections::{BTreeMap, VecDeque};

use wattdb_common::SimTime;

/// A deterministic log₂-bucketed histogram over non-negative floats.
///
/// `wattdb_common::Histogram` is duration-typed; the registry needs to
/// bucket arbitrary measurements (milliseconds, megabytes, watts), so it
/// carries its own minimal float variant. Percentiles are reported at
/// bucket upper bounds — coarse, but deterministic and mergeable.
#[derive(Debug, Clone)]
pub struct F64Histogram {
    buckets: [u64; 64],
    count: u64,
}

impl Default for F64Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
        }
    }
}

impl F64Histogram {
    fn bucket_of(v: f64) -> usize {
        let n = v.max(0.0).ceil() as u64;
        if n == 0 {
            0
        } else {
            (64 - n.leading_zeros() as usize).min(63)
        }
    }

    /// Record one observation (negatives clamp to zero).
    pub fn record(&mut self, v: f64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Estimated percentile (`p` in \[0,1\]) at the bucket upper bound.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (p.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i == 0 { 0.0 } else { (1u64 << i) as f64 };
            }
        }
        f64::MAX
    }
}

/// One frozen per-window snapshot of every registered metric.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSample {
    /// Virtual time the window closed.
    pub at: SimTime,
    /// Monitoring window index (0-based).
    pub window: u64,
    /// Metric name → value. Counters appear under their name, gauges
    /// under theirs, histograms as `<name>.p50/.p95/.p99`.
    pub values: BTreeMap<String, f64>,
}

impl WindowSample {
    /// Value lookup.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }
}

/// Named counters/gauges/histograms plus the bounded sample series.
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, F64Histogram>,
    samples: VecDeque<WindowSample>,
    capacity: usize,
    windows: u64,
    /// Samples evicted from the ring since the start of the run.
    pub dropped: u64,
}

impl MetricsRegistry {
    /// Registry with a ring bound on retained window samples.
    pub fn new(capacity: usize) -> Self {
        Self {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
            samples: VecDeque::new(),
            capacity: capacity.max(1),
            windows: 0,
            dropped: 0,
        }
    }

    /// Add to a monotone counter (created at zero on first use).
    pub fn inc_counter(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Set a monotone counter to an absolute value (for mirroring a
    /// counter that is authoritative elsewhere).
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Current counter value (zero when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set a gauge to the latest observation.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Remove a gauge (e.g. a per-node gauge whose node left the pool)
    /// so stale values stop appearing in new samples.
    pub fn clear_gauge(&mut self, name: &str) {
        self.gauges.remove(name);
    }

    /// Current gauge value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record one observation into a histogram (created on first use).
    pub fn observe(&mut self, name: &str, value: f64) {
        self.hists
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Freeze the current state of every metric into the next
    /// [`WindowSample`] and return its window index.
    pub fn sample_window(&mut self, at: SimTime) -> u64 {
        let mut values = BTreeMap::new();
        for (name, v) in &self.counters {
            values.insert(name.clone(), *v as f64);
        }
        for (name, v) in &self.gauges {
            values.insert(name.clone(), *v);
        }
        for (name, h) in &self.hists {
            for (suffix, p) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                values.insert(format!("{name}.{suffix}"), h.percentile(p));
            }
        }
        let window = self.windows;
        self.windows += 1;
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(WindowSample { at, window, values });
        window
    }

    /// The retained sample series, oldest surviving first.
    pub fn samples(&self) -> impl Iterator<Item = &WindowSample> {
        self.samples.iter()
    }

    /// The most recent sample.
    pub fn latest(&self) -> Option<&WindowSample> {
        self.samples.back()
    }

    /// Total windows ever sampled.
    pub fn windows(&self) -> u64 {
        self.windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_freeze_counters_gauges_and_percentiles() {
        let mut r = MetricsRegistry::new(4);
        r.inc_counter("txn.completed", 7);
        r.set_gauge("node.0.cpu", 0.42);
        for v in [1.0, 2.0, 100.0] {
            r.observe("resp_ms", v);
        }
        let w = r.sample_window(SimTime::from_secs(5));
        assert_eq!(w, 0);
        let s = r.latest().unwrap();
        assert_eq!(s.value("txn.completed"), Some(7.0));
        assert_eq!(s.value("node.0.cpu"), Some(0.42));
        assert!(s.value("resp_ms.p99").unwrap() >= s.value("resp_ms.p50").unwrap());
    }

    #[test]
    fn ring_bound_holds() {
        let mut r = MetricsRegistry::new(2);
        for i in 0..5u64 {
            r.set_gauge("g", i as f64);
            r.sample_window(SimTime::from_secs(i));
        }
        assert_eq!(r.samples().count(), 2);
        assert_eq!(r.dropped, 3);
        assert_eq!(r.windows(), 5);
        assert_eq!(r.latest().unwrap().window, 4);
    }

    #[test]
    fn cleared_gauges_leave_new_samples() {
        let mut r = MetricsRegistry::new(4);
        r.set_gauge("node.9.cpu", 1.0);
        r.sample_window(SimTime::from_secs(1));
        r.clear_gauge("node.9.cpu");
        r.sample_window(SimTime::from_secs(2));
        assert_eq!(r.latest().unwrap().value("node.9.cpu"), None);
    }
}
