//! # WattDB-RS telemetry: the control plane's flight recorder
//!
//! Six PRs of control machinery — rebalancing, helper nodes, elasticity,
//! failover — previously reported through a flat event log and ad-hoc
//! metric fields. This crate is the durable, machine-readable layer that
//! every policy change is judged through:
//!
//! * **Tracing spans** ([`span`]): sim-time-stamped, id-linked spans for
//!   every long-running operation, with structured attributes (planned
//!   vs. realized heat/bytes, predicted vs. realized relief) and child
//!   events, kept in a bounded ring.
//! * **Metrics registry** ([`registry`]): named counters, gauges, and
//!   histograms frozen once per monitoring window into a deterministic
//!   time-series snapshot.
//! * **Decision timeline** ([`timeline`]): one record per monitoring
//!   window — `Hold` included — carrying the full signal vector the
//!   policy saw, linked to the span its decision started, rendered by
//!   `explain()` as "window 42: skew 2.30 ≥ 2.00, streak 2 →
//!   AttachHelpers, predicted 1.20, realized 0.90 MB/s".
//! * **JSONL export** ([`export`]): hand-rolled writer *and* parser (the
//!   build is offline — no serde); a fixed-seed run exports a
//!   byte-identical file, and CI re-parses every shipped line back into
//!   the typed structs.
//!
//! The crate depends only on `wattdb-common`: it knows about virtual
//! time and metric names, not about clusters. The core crate owns the
//! vocabulary of *what* gets recorded; this crate guarantees *how* —
//! bounded memory, deterministic serialization, and instrumentation
//! that can never crash the system it observes.

pub mod export;
pub mod json;
pub mod registry;
pub mod span;
pub mod timeline;

pub use export::{parse_jsonl, ExportMeta, SchemaError, TimelineExport, SCHEMA_VERSION};
pub use registry::{F64Histogram, MetricsRegistry, WindowSample};
pub use span::{AttrValue, Span, SpanCollector, SpanEvent, SpanId};
pub use timeline::{render_explain, render_record, DecisionRecord, DecisionTimeline, SignalVector};

use wattdb_common::SimTime;

/// Default bound on retained closed spans.
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;
/// Default bound on retained window samples.
pub const DEFAULT_SAMPLE_CAPACITY: usize = 8192;
/// Default bound on retained decision records.
pub const DEFAULT_DECISION_CAPACITY: usize = 8192;

/// The assembled flight recorder: spans + registry + decision timeline.
///
/// Embedded in the cluster and always on; the bounded rings make the
/// steady-state memory cost constant regardless of run length.
#[derive(Debug)]
pub struct Telemetry {
    /// Tracing spans for long-running operations.
    pub spans: SpanCollector,
    /// Per-window metrics registry.
    pub registry: MetricsRegistry,
    /// The autopilot decision timeline.
    pub timeline: DecisionTimeline,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// Recorder with the default ring bounds.
    pub fn new() -> Self {
        Self::with_capacity(
            DEFAULT_SPAN_CAPACITY,
            DEFAULT_SAMPLE_CAPACITY,
            DEFAULT_DECISION_CAPACITY,
        )
    }

    /// Recorder with explicit ring bounds (spans, samples, decisions).
    pub fn with_capacity(spans: usize, samples: usize, decisions: usize) -> Self {
        Self {
            spans: SpanCollector::new(spans),
            registry: MetricsRegistry::new(samples),
            timeline: DecisionTimeline::new(decisions),
        }
    }

    /// Serialize the full recorder state as JSONL (meta line, spans —
    /// closed then open — samples, then decisions).
    pub fn export_jsonl(&self) -> String {
        let meta = ExportMeta {
            version: SCHEMA_VERSION,
            spans_dropped: self.spans.dropped,
            samples_dropped: self.registry.dropped,
            decisions_dropped: self.timeline.dropped,
        };
        let mut out = export::meta_line(&meta);
        out.push('\n');
        for span in self.spans.closed() {
            out.push_str(&export::span_line(span));
            out.push('\n');
        }
        for span in self.spans.open() {
            out.push_str(&export::span_line(span));
            out.push('\n');
        }
        for sample in self.registry.samples() {
            out.push_str(&export::sample_line(sample));
            out.push('\n');
        }
        for record in self.timeline.records() {
            out.push_str(&export::decision_line(record));
            out.push('\n');
        }
        out
    }

    /// Render the explainable timeline from live state (same renderer
    /// the parsed export uses).
    pub fn explain(&self) -> Vec<String> {
        render_explain(self.timeline.records(), |id| self.spans.get(SpanId(id)))
    }

    /// Convenience: open a span with initial attributes.
    pub fn start_span(
        &mut self,
        name: &str,
        at: SimTime,
        attrs: Vec<(String, AttrValue)>,
    ) -> SpanId {
        let id = self.spans.start(name, at);
        for (k, v) in attrs {
            self.spans.set_attr(id, &k, v);
        }
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_parses_back_and_explains_identically() {
        let mut t = Telemetry::new();
        let span = t.start_span(
            "helpers",
            SimTime::from_secs(10),
            vec![("predicted_relief_mbps".into(), 1.2.into())],
        );
        t.spans
            .set_attr(span, "realized_relief_mbps", AttrValue::F64(0.9));
        t.spans.end(span, SimTime::from_secs(60));
        t.registry.set_gauge("power.watts", 91.5);
        t.registry.sample_window(SimTime::from_secs(5));
        t.timeline.push(DecisionRecord {
            window: 0,
            at: SimTime::from_secs(5),
            decision: "AttachHelpers".into(),
            trigger: "heat-skew".into(),
            outcome: "applied".into(),
            signals: SignalVector::default(),
            predicted: Some(1.2),
            span: Some(span.0),
        });
        let text = t.export_jsonl();
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed.spans.len(), 1);
        assert_eq!(parsed.samples.len(), 1);
        assert_eq!(parsed.decisions.len(), 1);
        // The live explain and the export-derived explain agree exactly.
        assert_eq!(t.explain(), parsed.explain());
        // And a second export is byte-identical.
        assert_eq!(text, t.export_jsonl());
    }
}
