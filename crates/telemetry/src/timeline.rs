//! The explainable autopilot timeline.
//!
//! Every monitoring window produces exactly one [`DecisionRecord`] —
//! including the windows where the policy held still — carrying the full
//! [`SignalVector`] that produced the decision (utilization, skew,
//! streak counters, cooldown state). Applied decisions link to the span
//! of the operation they started, so predicted-vs-realized outcomes can
//! be joined back onto the decision after the operation completes.
//!
//! [`render_explain`] turns records (plus their linked spans) into the
//! human-readable account the facade's `explain()` returns:
//!
//! ```text
//! window 42 [t=210s]: skew 2.30 ≥ 2.00, streak 2/2 → AttachHelpers
//!   (applied, span s7) predicted relief 1.20 MB/s, realized 0.90 MB/s
//! ```

use std::collections::VecDeque;

use wattdb_common::SimTime;

use crate::span::Span;

/// The complete signal vector the policy saw in one window.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SignalVector {
    /// Mean CPU utilization over data-serving active nodes.
    pub mean_active_cpu: f64,
    /// Hottest node's CPU utilization.
    pub max_cpu: f64,
    /// Hottest node's NIC utilization.
    pub max_net: f64,
    /// Heat skew: hottest node's heat over the active mean.
    pub heat_skew: f64,
    /// Mean per-node heat over data-serving actives.
    pub mean_heat: f64,
    /// Data-serving active node count.
    pub active_nodes: u64,
    /// Powered-off standby count.
    pub standby_nodes: u64,
    /// Consecutive windows above the scale-out threshold.
    pub high_streak: u64,
    /// Consecutive windows below the scale-in threshold.
    pub low_streak: u64,
    /// Consecutive windows of decisive skew.
    pub skew_streak: u64,
    /// Windows of skew cooldown still to serve.
    pub cooldown_left: u64,
    /// Decisive skew fires since the last subsidence.
    pub skew_fires: u64,
    /// Whether the skew signal read as subsided this window.
    pub subsided: bool,
}

/// One window of the autopilot timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Monitoring window index (0-based, same numbering as the registry).
    pub window: u64,
    /// Virtual time of the window.
    pub at: SimTime,
    /// The decision, rendered (`"Hold"`, `"ScaleOut"`, `"AttachHelpers(n1<-n4)"`, …).
    pub decision: String,
    /// Trigger label (`"cpu-high"`, `"heat-skew"`, `"helper"`, `"failover"`, or empty).
    pub trigger: String,
    /// Outcome: `"hold"`, `"applied"`, `"deferred: <reason>"`, `"suspended: <nodes>"`.
    pub outcome: String,
    /// The signals that produced the decision.
    pub signals: SignalVector,
    /// Predicted benefit at decision time (relief MB/s for helpers,
    /// planned heat share for rebalances), when the decision made one.
    pub predicted: Option<f64>,
    /// Span of the operation this decision started, when applied.
    pub span: Option<u64>,
}

/// Bounded ring of decision records.
#[derive(Debug)]
pub struct DecisionTimeline {
    records: VecDeque<DecisionRecord>,
    capacity: usize,
    /// Records evicted from the ring since the start of the run.
    pub dropped: u64,
}

impl DecisionTimeline {
    /// Timeline with a ring bound on retained records.
    pub fn new(capacity: usize) -> Self {
        Self {
            records: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Append one window's record.
    pub fn push(&mut self, record: DecisionRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }

    /// Records oldest-surviving first.
    pub fn records(&self) -> impl Iterator<Item = &DecisionRecord> {
        self.records.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Realized-outcome attributes looked up on a linked span, in the order
/// they are reported by [`render_explain`].
const REALIZED_ATTRS: &[(&str, &str, &str)] = &[
    ("realized_relief_mbps", "realized", " MB/s"),
    ("bytes_moved", "moved", " B"),
    ("heat_moved", "heat moved", ""),
    ("rereplicated_bytes", "re-replicated", " B"),
];

/// Render one decision record (with its linked span, if resolvable) into
/// the two-line explain form. `span` must be the span named by
/// `record.span`, when that id is known.
pub fn render_record(record: &DecisionRecord, span: Option<&Span>) -> String {
    let s = &record.signals;
    let signal_clause = match record.trigger.as_str() {
        "heat-skew" | "helper" => format!(
            "skew {:.2}, mean heat {:.2}, streak {}, cooldown {}",
            s.heat_skew, s.mean_heat, s.skew_streak, s.cooldown_left
        ),
        "cpu-high" => format!(
            "cpu {:.2} (max {:.2}), net max {:.2}, streak {}",
            s.mean_active_cpu, s.max_cpu, s.max_net, s.high_streak
        ),
        "cpu-low" => format!(
            "cpu {:.2} (max {:.2}), streak {}, actives {}",
            s.mean_active_cpu, s.max_cpu, s.low_streak, s.active_nodes
        ),
        "failover" => format!("actives {}, standbys {}", s.active_nodes, s.standby_nodes),
        _ => format!(
            "cpu {:.2}, skew {:.2}, streaks {}/{}/{}",
            s.mean_active_cpu, s.heat_skew, s.high_streak, s.low_streak, s.skew_streak
        ),
    };
    let mut line = format!(
        "window {} [t={}s]: {} → {} ({})",
        record.window,
        record.at.as_secs_f64(),
        signal_clause,
        record.decision,
        record.outcome,
    );
    if let Some(p) = record.predicted {
        line.push_str(&format!(", predicted {p:.2}"));
    }
    if let Some(span) = span {
        line.push_str(&format!(" [span {}", span.id));
        for (attr, label, unit) in REALIZED_ATTRS {
            if let Some(v) = span.attr_f64(attr) {
                line.push_str(&format!(", {label} {v:.2}{unit}"));
            }
        }
        match span.end {
            Some(end) => line.push_str(&format!(
                ", took {:.1}s]",
                end.since(span.start).as_secs_f64()
            )),
            None => line.push_str(", in flight]"),
        }
    }
    line
}

/// Render a full timeline: one line per record, joined with the spans
/// they link to. `lookup` resolves a span id to its span, when retained.
pub fn render_explain<'a>(
    records: impl Iterator<Item = &'a DecisionRecord>,
    mut lookup: impl FnMut(u64) -> Option<&'a Span>,
) -> Vec<String> {
    records
        .map(|r| render_record(r, r.span.and_then(&mut lookup)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanCollector;

    #[test]
    fn timeline_ring_is_bounded() {
        let mut t = DecisionTimeline::new(2);
        for w in 0..4 {
            t.push(DecisionRecord {
                window: w,
                at: SimTime::from_secs(5 * (w + 1)),
                decision: "Hold".into(),
                trigger: String::new(),
                outcome: "hold".into(),
                signals: SignalVector::default(),
                predicted: None,
                span: None,
            });
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped, 2);
        assert_eq!(t.records().next().unwrap().window, 2);
    }

    #[test]
    fn render_joins_decision_to_span_outcome() {
        let mut spans = SpanCollector::new(8);
        let id = spans.start("helpers", SimTime::from_secs(10));
        spans.set_attr(id, "realized_relief_mbps", 0.9.into());
        spans.end(id, SimTime::from_secs(40));
        let record = DecisionRecord {
            window: 42,
            at: SimTime::from_secs(210),
            decision: "AttachHelpers".into(),
            trigger: "heat-skew".into(),
            outcome: "applied".into(),
            signals: SignalVector {
                heat_skew: 2.3,
                mean_heat: 1.1,
                skew_streak: 2,
                ..SignalVector::default()
            },
            predicted: Some(1.2),
            span: Some(id.0),
        };
        let line = render_record(&record, spans.get(id));
        assert!(line.contains("window 42"), "{line}");
        assert!(line.contains("skew 2.30"), "{line}");
        assert!(line.contains("AttachHelpers"), "{line}");
        assert!(line.contains("predicted 1.20"), "{line}");
        assert!(line.contains("realized 0.90 MB/s"), "{line}");
        assert!(line.contains("took 30.0s"), "{line}");
    }
}
