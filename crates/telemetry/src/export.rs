//! JSONL export and re-import of the telemetry state.
//!
//! One line per object, four kinds: a `meta` header, then every span
//! (closed first, in close order, then still-open spans in id order),
//! then the window samples, then the decision records. All virtual
//! times serialize as integer microseconds and every map is
//! `BTreeMap`-ordered, so a fixed-seed run exports a **byte-identical**
//! file every time — that property is under test.
//!
//! [`parse_jsonl`] takes every line back into the typed structs, which
//! is what the CI schema-validation step runs against the shipped
//! `BENCH_timeline.jsonl` artifact.

use wattdb_common::SimTime;

use crate::json::{self, JsonValue};
use crate::registry::WindowSample;
use crate::span::{AttrValue, Span, SpanEvent, SpanId};
use crate::timeline::{DecisionRecord, SignalVector};

/// Schema version stamped into the `meta` line.
pub const SCHEMA_VERSION: u64 = 1;

/// The `meta` header line.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExportMeta {
    /// Schema version of the file.
    pub version: u64,
    /// Spans evicted from the ring before export.
    pub spans_dropped: u64,
    /// Samples evicted before export.
    pub samples_dropped: u64,
    /// Decision records evicted before export.
    pub decisions_dropped: u64,
}

/// A fully parsed timeline file.
#[derive(Debug, Clone, Default)]
pub struct TimelineExport {
    /// The header.
    pub meta: ExportMeta,
    /// Every span in the file (closed then open).
    pub spans: Vec<Span>,
    /// Every window sample.
    pub samples: Vec<WindowSample>,
    /// Every decision record.
    pub decisions: Vec<DecisionRecord>,
}

impl TimelineExport {
    /// Span lookup by raw id.
    pub fn span(&self, id: u64) -> Option<&Span> {
        self.spans.iter().find(|s| s.id.0 == id)
    }

    /// Render the explainable timeline purely from the parsed file.
    pub fn explain(&self) -> Vec<String> {
        crate::timeline::render_explain(self.decisions.iter(), |id| self.span(id))
    }
}

fn write_attrs(out: &mut String, attrs: &[(String, AttrValue)]) {
    out.push('{');
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        json::write_str(out, k);
        out.push_str(": ");
        match v {
            AttrValue::Str(s) => json::write_str(out, s),
            AttrValue::F64(f) => json::write_f64(out, *f),
            AttrValue::U64(u) => out.push_str(&u.to_string()),
            AttrValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            AttrValue::StrList(items) => {
                out.push('[');
                for (j, item) in items.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    json::write_str(out, item);
                }
                out.push(']');
            }
        }
    }
    out.push('}');
}

/// Serialize one span as a JSONL line (no trailing newline).
pub fn span_line(span: &Span) -> String {
    let mut out = String::from("{\"kind\": \"span\", \"id\": ");
    out.push_str(&span.id.0.to_string());
    out.push_str(", \"parent\": ");
    match span.parent {
        Some(p) => out.push_str(&p.0.to_string()),
        None => out.push_str("null"),
    }
    out.push_str(", \"name\": ");
    json::write_str(&mut out, &span.name);
    out.push_str(&format!(", \"start\": {}", span.start.as_micros()));
    out.push_str(", \"end\": ");
    match span.end {
        Some(end) => out.push_str(&end.as_micros().to_string()),
        None => out.push_str("null"),
    }
    out.push_str(", \"attrs\": ");
    write_attrs(&mut out, &span.attrs);
    out.push_str(", \"events\": [");
    for (i, ev) in span.events.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{{\"at\": {}, \"name\": ", ev.at.as_micros()));
        json::write_str(&mut out, &ev.name);
        out.push_str(", \"attrs\": ");
        write_attrs(&mut out, &ev.attrs);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Serialize one window sample as a JSONL line.
pub fn sample_line(sample: &WindowSample) -> String {
    let mut out = format!(
        "{{\"kind\": \"sample\", \"window\": {}, \"at\": {}, \"values\": {{",
        sample.window,
        sample.at.as_micros()
    );
    for (i, (k, v)) in sample.values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        json::write_str(&mut out, k);
        out.push_str(": ");
        json::write_f64(&mut out, *v);
    }
    out.push_str("}}");
    out
}

/// Serialize one decision record as a JSONL line.
pub fn decision_line(record: &DecisionRecord) -> String {
    let s = &record.signals;
    let mut out = format!(
        "{{\"kind\": \"decision\", \"window\": {}, \"at\": {}, \"decision\": ",
        record.window,
        record.at.as_micros()
    );
    json::write_str(&mut out, &record.decision);
    out.push_str(", \"trigger\": ");
    json::write_str(&mut out, &record.trigger);
    out.push_str(", \"outcome\": ");
    json::write_str(&mut out, &record.outcome);
    out.push_str(", \"predicted\": ");
    match record.predicted {
        Some(p) => json::write_f64(&mut out, p),
        None => out.push_str("null"),
    }
    out.push_str(", \"span\": ");
    match record.span {
        Some(id) => out.push_str(&id.to_string()),
        None => out.push_str("null"),
    }
    out.push_str(", \"signals\": {");
    let mut first = true;
    let mut field = |out: &mut String, name: &str, render: &str| {
        if !first {
            out.push_str(", ");
        }
        first = false;
        json::write_str(out, name);
        out.push_str(": ");
        out.push_str(render);
    };
    let mut f64s = String::new();
    json::write_f64(&mut f64s, s.mean_active_cpu);
    field(&mut out, "mean_active_cpu", &f64s);
    for (name, v) in [
        ("max_cpu", s.max_cpu),
        ("max_net", s.max_net),
        ("heat_skew", s.heat_skew),
        ("mean_heat", s.mean_heat),
    ] {
        let mut buf = String::new();
        json::write_f64(&mut buf, v);
        field(&mut out, name, &buf);
    }
    for (name, v) in [
        ("active_nodes", s.active_nodes),
        ("standby_nodes", s.standby_nodes),
        ("high_streak", s.high_streak),
        ("low_streak", s.low_streak),
        ("skew_streak", s.skew_streak),
        ("cooldown_left", s.cooldown_left),
        ("skew_fires", s.skew_fires),
    ] {
        field(&mut out, name, &v.to_string());
    }
    field(
        &mut out,
        "subsided",
        if s.subsided { "true" } else { "false" },
    );
    out.push_str("}}");
    out
}

/// Serialize the `meta` header line.
pub fn meta_line(meta: &ExportMeta) -> String {
    format!(
        concat!(
            "{{\"kind\": \"meta\", \"version\": {}, \"spans_dropped\": {}, ",
            "\"samples_dropped\": {}, \"decisions_dropped\": {}}}"
        ),
        meta.version, meta.spans_dropped, meta.samples_dropped, meta.decisions_dropped
    )
}

/// Error taking a line back apart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong with it.
    pub msg: String,
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

fn need<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, String> {
    v.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

fn need_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    need(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field '{key}' is not an unsigned integer"))
}

fn need_f64(v: &JsonValue, key: &str) -> Result<f64, String> {
    need(v, key)?
        .as_f64()
        .ok_or_else(|| format!("field '{key}' is not a number"))
}

fn need_str(v: &JsonValue, key: &str) -> Result<String, String> {
    Ok(need(v, key)?
        .as_str()
        .ok_or_else(|| format!("field '{key}' is not a string"))?
        .to_string())
}

fn opt_u64(v: &JsonValue, key: &str) -> Result<Option<u64>, String> {
    match need(v, key)? {
        JsonValue::Null => Ok(None),
        other => other
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field '{key}' is neither null nor unsigned")),
    }
}

fn decode_attrs(v: &JsonValue, key: &str) -> Result<Vec<(String, AttrValue)>, String> {
    let obj = need(v, key)?
        .as_obj()
        .ok_or_else(|| format!("field '{key}' is not an object"))?;
    let mut out = Vec::with_capacity(obj.len());
    for (k, val) in obj {
        let decoded = match val {
            JsonValue::Str(s) => AttrValue::Str(s.clone()),
            JsonValue::Bool(b) => AttrValue::Bool(*b),
            JsonValue::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                AttrValue::U64(*n as u64)
            }
            JsonValue::Num(n) => AttrValue::F64(*n),
            JsonValue::Arr(items) => {
                let mut list = Vec::with_capacity(items.len());
                for item in items {
                    list.push(
                        item.as_str()
                            .ok_or_else(|| format!("attr '{k}': list item is not a string"))?
                            .to_string(),
                    );
                }
                AttrValue::StrList(list)
            }
            JsonValue::Null => AttrValue::F64(f64::NAN),
            JsonValue::Obj(_) => return Err(format!("attr '{k}': nested objects unsupported")),
        };
        out.push((k.clone(), decoded));
    }
    Ok(out)
}

fn decode_span(v: &JsonValue) -> Result<Span, String> {
    let events_json = need(v, "events")?
        .as_arr()
        .ok_or_else(|| "field 'events' is not an array".to_string())?;
    let mut events = Vec::with_capacity(events_json.len());
    for ev in events_json {
        events.push(SpanEvent {
            at: SimTime::from_micros(need_u64(ev, "at")?),
            name: need_str(ev, "name")?,
            attrs: decode_attrs(ev, "attrs")?,
        });
    }
    Ok(Span {
        id: SpanId(need_u64(v, "id")?),
        parent: opt_u64(v, "parent")?.map(SpanId),
        name: need_str(v, "name")?,
        start: SimTime::from_micros(need_u64(v, "start")?),
        end: opt_u64(v, "end")?.map(SimTime::from_micros),
        attrs: decode_attrs(v, "attrs")?,
        events,
    })
}

fn decode_sample(v: &JsonValue) -> Result<WindowSample, String> {
    let values = need(v, "values")?
        .as_num_map()
        .ok_or_else(|| "field 'values' is not a numeric object".to_string())?;
    Ok(WindowSample {
        at: SimTime::from_micros(need_u64(v, "at")?),
        window: need_u64(v, "window")?,
        values,
    })
}

fn decode_decision(v: &JsonValue) -> Result<DecisionRecord, String> {
    let sig = need(v, "signals")?;
    let signals = SignalVector {
        mean_active_cpu: need_f64(sig, "mean_active_cpu")?,
        max_cpu: need_f64(sig, "max_cpu")?,
        max_net: need_f64(sig, "max_net")?,
        heat_skew: need_f64(sig, "heat_skew")?,
        mean_heat: need_f64(sig, "mean_heat")?,
        active_nodes: need_u64(sig, "active_nodes")?,
        standby_nodes: need_u64(sig, "standby_nodes")?,
        high_streak: need_u64(sig, "high_streak")?,
        low_streak: need_u64(sig, "low_streak")?,
        skew_streak: need_u64(sig, "skew_streak")?,
        cooldown_left: need_u64(sig, "cooldown_left")?,
        skew_fires: need_u64(sig, "skew_fires")?,
        subsided: need(sig, "subsided")?
            .as_bool()
            .ok_or_else(|| "field 'subsided' is not a bool".to_string())?,
    };
    let predicted = match need(v, "predicted")? {
        JsonValue::Null => None,
        other => Some(
            other
                .as_f64()
                .ok_or_else(|| "field 'predicted' is neither null nor a number".to_string())?,
        ),
    };
    Ok(DecisionRecord {
        window: need_u64(v, "window")?,
        at: SimTime::from_micros(need_u64(v, "at")?),
        decision: need_str(v, "decision")?,
        trigger: need_str(v, "trigger")?,
        outcome: need_str(v, "outcome")?,
        signals,
        predicted,
        span: opt_u64(v, "span")?,
    })
}

/// Parse a whole JSONL export back into typed structs. Every line must
/// parse as JSON **and** decode into its declared kind; blank lines are
/// ignored. Unknown kinds are an error — the schema is closed.
pub fn parse_jsonl(text: &str) -> Result<TimelineExport, SchemaError> {
    let mut out = TimelineExport::default();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fail = |msg: String| SchemaError { line: i + 1, msg };
        let v = json::parse(line).map_err(|e| fail(e.to_string()))?;
        let kind = need_str(&v, "kind").map_err(fail)?;
        match kind.as_str() {
            "meta" => {
                out.meta = ExportMeta {
                    version: need_u64(&v, "version").map_err(fail)?,
                    spans_dropped: need_u64(&v, "spans_dropped").map_err(fail)?,
                    samples_dropped: need_u64(&v, "samples_dropped").map_err(fail)?,
                    decisions_dropped: need_u64(&v, "decisions_dropped").map_err(fail)?,
                };
            }
            "span" => out.spans.push(decode_span(&v).map_err(fail)?),
            "sample" => out.samples.push(decode_sample(&v).map_err(fail)?),
            "decision" => out.decisions.push(decode_decision(&v).map_err(fail)?),
            other => return Err(fail(format!("unknown kind '{other}'"))),
        }
    }
    if out.meta.version != SCHEMA_VERSION {
        return Err(SchemaError {
            line: 1,
            msg: format!(
                "schema version {} (expected {SCHEMA_VERSION}) — missing meta line?",
                out.meta.version
            ),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn span_line_round_trips() {
        let span = Span {
            id: SpanId(3),
            parent: Some(SpanId(1)),
            name: "rebalance".into(),
            start: SimTime::from_secs(5),
            end: Some(SimTime::from_secs(25)),
            attrs: vec![
                ("trigger".into(), AttrValue::Str("cpu-high".into())),
                ("bytes_moved".into(), AttrValue::U64(1024)),
                ("heat_moved".into(), AttrValue::F64(0.75)),
                ("escalated".into(), AttrValue::Bool(false)),
                (
                    "ranking".into(),
                    AttrValue::StrList(vec!["n4".into(), "n2".into()]),
                ),
            ],
            events: vec![SpanEvent {
                at: SimTime::from_secs(10),
                name: "boot".into(),
                attrs: vec![("nodes".into(), AttrValue::U64(2))],
            }],
        };
        let text = format!(
            "{}\n{}\n",
            meta_line(&ExportMeta {
                version: 1,
                ..Default::default()
            }),
            span_line(&span)
        );
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed.spans.len(), 1);
        assert_eq!(parsed.spans[0], span);
    }

    #[test]
    fn decision_and_sample_lines_round_trip() {
        let record = DecisionRecord {
            window: 7,
            at: SimTime::from_secs(40),
            decision: "ScaleOut".into(),
            trigger: "cpu-high".into(),
            outcome: "applied".into(),
            signals: SignalVector {
                mean_active_cpu: 0.93,
                max_cpu: 0.99,
                high_streak: 2,
                active_nodes: 3,
                ..SignalVector::default()
            },
            predicted: Some(0.6),
            span: Some(9),
        };
        let sample = WindowSample {
            at: SimTime::from_secs(40),
            window: 7,
            values: BTreeMap::from([
                ("txn.throughput".to_string(), 210.5),
                ("power.watts".to_string(), 87.0),
            ]),
        };
        let text = format!(
            "{}\n{}\n{}\n",
            meta_line(&ExportMeta {
                version: 1,
                ..Default::default()
            }),
            decision_line(&record),
            sample_line(&sample),
        );
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed.decisions, vec![record]);
        assert_eq!(parsed.samples, vec![sample]);
    }

    #[test]
    fn malformed_lines_are_rejected_with_position() {
        let err = parse_jsonl("{\"kind\": \"meta\", \"version\": 1, \"spans_dropped\": 0, \"samples_dropped\": 0, \"decisions_dropped\": 0}\n{\"kind\": \"span\"}\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(parse_jsonl("{\"kind\": \"mystery\"}\n").is_err());
        assert!(parse_jsonl("not json\n").is_err());
    }
}
