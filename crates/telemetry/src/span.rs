//! Sim-time tracing spans for long-running control-plane operations.
//!
//! A [`Span`] covers one operation with a beginning and an end on the
//! virtual clock — a rebalance from `launch` to `maybe_finish`, a helper
//! deployment from first attach to last detach, a failover from detection
//! to restored replication factor, a power transition from switch-on to
//! boot-complete. Spans carry ordered structured attributes (trigger,
//! planned vs. realized heat/bytes, predicted vs. realized relief) and
//! timestamped child [`SpanEvent`]s, and are id-linked so a decision on
//! the timeline can point at the operation it started.
//!
//! Closed spans live in a bounded ring: the collector never grows without
//! bound no matter how long a simulation runs.

use std::collections::{BTreeMap, VecDeque};

use wattdb_common::SimTime;

/// Identifier of a span; allocated monotonically, never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One structured attribute value on a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Free-form string (labels, planner names, triggers).
    Str(String),
    /// Measurement (heat, bytes/s, seconds).
    F64(f64),
    /// Count or identifier (bytes, segments, node ids).
    U64(u64),
    /// Flag.
    Bool(bool),
    /// Ordered list of labels (e.g. a candidate ranking).
    StrList(Vec<String>),
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Str(s.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Str(s)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<Vec<String>> for AttrValue {
    fn from(v: Vec<String>) -> Self {
        AttrValue::StrList(v)
    }
}

/// A timestamped point event inside a span (a promotion, a partial
/// detach, a boot completion).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Virtual time of the event.
    pub at: SimTime,
    /// Event name.
    pub name: String,
    /// Ordered attributes.
    pub attrs: Vec<(String, AttrValue)>,
}

/// One traced operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Unique id (never reused within a collector).
    pub id: SpanId,
    /// Enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Operation name (`"rebalance"`, `"helpers"`, `"failover"`, …).
    pub name: String,
    /// Virtual time the operation started.
    pub start: SimTime,
    /// Virtual time it finished; `None` while still open.
    pub end: Option<SimTime>,
    /// Ordered attributes; later writes to the same key overwrite.
    pub attrs: Vec<(String, AttrValue)>,
    /// Child events in record order.
    pub events: Vec<SpanEvent>,
}

impl Span {
    /// Attribute lookup.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Attribute as `f64` (accepts `F64` and `U64`).
    pub fn attr_f64(&self, key: &str) -> Option<f64> {
        match self.attr(key)? {
            AttrValue::F64(v) => Some(*v),
            AttrValue::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Attribute as string slice.
    pub fn attr_str(&self, key: &str) -> Option<&str> {
        match self.attr(key)? {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Collects spans into open storage plus a bounded ring of closed spans.
#[derive(Debug)]
pub struct SpanCollector {
    next_id: u64,
    open: BTreeMap<SpanId, Span>,
    closed: VecDeque<Span>,
    capacity: usize,
    /// Closed spans evicted from the ring since the start of the run.
    pub dropped: u64,
}

impl SpanCollector {
    /// Collector with a ring bound on closed spans.
    pub fn new(capacity: usize) -> Self {
        Self {
            next_id: 0,
            open: BTreeMap::new(),
            closed: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Open a root span.
    pub fn start(&mut self, name: &str, at: SimTime) -> SpanId {
        self.start_child(name, at, None)
    }

    /// Open a span under `parent` (which may already be closed; linkage
    /// is by id, not lifetime).
    pub fn start_child(&mut self, name: &str, at: SimTime, parent: Option<SpanId>) -> SpanId {
        let id = SpanId(self.next_id);
        self.next_id += 1;
        self.open.insert(
            id,
            Span {
                id,
                parent,
                name: name.to_string(),
                start: at,
                end: None,
                attrs: Vec::new(),
                events: Vec::new(),
            },
        );
        id
    }

    /// Set (or overwrite) an attribute on an open span. Unknown or
    /// already-closed ids are ignored — instrumentation must never be
    /// able to crash the system it observes.
    pub fn set_attr(&mut self, id: SpanId, key: &str, value: AttrValue) {
        if let Some(span) = self.open.get_mut(&id) {
            if let Some(slot) = span.attrs.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                span.attrs.push((key.to_string(), value));
            }
        }
    }

    /// Record a child event on an open span; ignored when unknown/closed.
    pub fn add_event(
        &mut self,
        id: SpanId,
        at: SimTime,
        name: &str,
        attrs: Vec<(String, AttrValue)>,
    ) {
        if let Some(span) = self.open.get_mut(&id) {
            span.events.push(SpanEvent {
                at,
                name: name.to_string(),
                attrs,
            });
        }
    }

    /// Close an open span and move it to the ring. Ignored when already
    /// closed or unknown.
    pub fn end(&mut self, id: SpanId, at: SimTime) {
        if let Some(mut span) = self.open.remove(&id) {
            span.end = Some(at);
            if self.closed.len() == self.capacity {
                self.closed.pop_front();
                self.dropped += 1;
            }
            self.closed.push_back(span);
        }
    }

    /// Still-open spans in id order.
    pub fn open(&self) -> impl Iterator<Item = &Span> {
        self.open.values()
    }

    /// Closed spans in close order (oldest surviving first).
    pub fn closed(&self) -> impl Iterator<Item = &Span> {
        self.closed.iter()
    }

    /// Look up any span, open or closed, by id.
    pub fn get(&self, id: SpanId) -> Option<&Span> {
        self.open
            .get(&id)
            .or_else(|| self.closed.iter().find(|s| s.id == id))
    }

    /// Total spans ever started.
    pub fn started(&self) -> u64 {
        self.next_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime(s * 1_000_000)
    }

    #[test]
    fn span_lifecycle_and_lookup() {
        let mut c = SpanCollector::new(8);
        let a = c.start("rebalance", t(1));
        c.set_attr(a, "trigger", "cpu-high".into());
        c.set_attr(a, "trigger", "heat-skew".into()); // overwrite
        c.add_event(a, t(2), "boot", vec![("nodes".into(), 2u64.into())]);
        let b = c.start_child("copy", t(2), Some(a));
        c.end(b, t(3));
        c.end(a, t(4));
        assert_eq!(c.open().count(), 0);
        let span = c.get(a).unwrap();
        assert_eq!(span.attr_str("trigger"), Some("heat-skew"));
        assert_eq!(span.events.len(), 1);
        assert_eq!(c.get(b).unwrap().parent, Some(a));
    }

    #[test]
    fn ring_is_bounded_and_ids_never_reused() {
        let mut c = SpanCollector::new(2);
        let mut ids = Vec::new();
        for i in 0..5 {
            let id = c.start("op", t(i));
            c.end(id, t(i + 1));
            ids.push(id);
        }
        assert_eq!(c.closed().count(), 2);
        assert_eq!(c.dropped, 3);
        let mut sorted = ids.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 5, "ids are unique");
    }

    #[test]
    fn writes_to_closed_spans_are_ignored() {
        let mut c = SpanCollector::new(2);
        let a = c.start("op", t(0));
        c.end(a, t(1));
        c.set_attr(a, "late", 1.0.into());
        c.add_event(a, t(2), "late", vec![]);
        c.end(a, t(3));
        let span = c.get(a).unwrap();
        assert!(span.attrs.is_empty());
        assert!(span.events.is_empty());
        assert_eq!(span.end, Some(t(1)));
    }
}
