//! Minimal hand-rolled JSON: a writer for the exporter and a recursive
//! descent parser for the schema round-trip.
//!
//! The build is fully offline (no serde), so the telemetry exporter
//! serializes by hand and the CI schema-validation step needs a parser
//! that can take every exported line back apart. Only the subset the
//! telemetry schema uses is supported: objects, arrays, strings, finite
//! numbers, booleans, and null. Non-finite floats are written as `null`
//! so every emitted line is valid JSON.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; key order preserved as written.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object fields, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Convenience: an object of numbers as a `BTreeMap`.
    pub fn as_num_map(&self) -> Option<BTreeMap<String, f64>> {
        let fields = self.as_obj()?;
        let mut out = BTreeMap::new();
        for (k, v) in fields {
            out.insert(k.clone(), v.as_f64()?);
        }
        Some(out)
    }
}

/// Append a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a JSON number to `out`. Rust's shortest round-trip `Display`
/// for `f64` is deterministic, which is what makes the exported timeline
/// byte-identical across runs; non-finite values become `null`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Parse error with a byte offset into the input line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

/// Parse one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("short \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unescaped.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_strings_with_escapes() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\u{1}e");
        let parsed = parse(&out).unwrap();
        assert_eq!(parsed, JsonValue::Str("a\"b\\c\nd\u{1}e".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }
}
