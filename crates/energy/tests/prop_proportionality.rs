//! Property tests for the energy-proportionality index — the number the
//! scorecard and the `energy_scorecard` bench gate on, so its basic
//! shape must hold for *any* observation set, not just the curated unit
//! fixtures: bounded to [0,1], order-free (it is a mean), exactly 1.0
//! on a perfectly proportional trace, and monotonically non-increasing
//! as idle (utilization-free) power is stacked on.

use proptest::prelude::*;
use wattdb_common::Watts;
use wattdb_energy::{proportionality_index, proportionality_index_rated, UtilPower};

fn obs(pairs: &[(f64, f64)]) -> Vec<UtilPower> {
    pairs
        .iter()
        .map(|&(u, p)| UtilPower {
            utilization: u,
            power: Watts(p),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both index forms stay inside [0,1] for any finite observations.
    #[test]
    fn index_is_bounded(
        pairs in proptest::collection::vec((0.0f64..1.5, 0.0f64..500.0), 1..40),
        rated in 1.0f64..400.0,
    ) {
        let o = obs(&pairs);
        for idx in [
            proportionality_index(&o),
            proportionality_index_rated(&o, Watts(rated)),
        ] {
            prop_assert!((0.0..=1.0).contains(&idx), "index {idx} out of bounds");
        }
    }

    /// The index is a mean over observations, so any permutation of the
    /// trace scores identically.
    #[test]
    fn index_is_permutation_invariant(
        pairs in proptest::collection::vec((0.0f64..1.0, 0.0f64..300.0), 2..24),
        rated in 50.0f64..400.0,
        rot in 1usize..23,
    ) {
        let o = obs(&pairs);
        let mut rotated = o.clone();
        rotated.rotate_left(rot % o.len());
        let p = Watts(rated);
        prop_assert!(
            (proportionality_index_rated(&o, p)
                - proportionality_index_rated(&rotated, p)).abs() < 1e-12
        );
        prop_assert!(
            (proportionality_index(&o) - proportionality_index(&rotated)).abs() < 1e-12
        );
    }

    /// A synthetic trace lying exactly on the ideal line `P = u · P_peak`
    /// scores exactly 1.0 under the rated form.
    #[test]
    fn proportional_trace_scores_one(
        utils in proptest::collection::vec(0.0f64..1.0, 1..32),
        rated in 10.0f64..400.0,
    ) {
        let o: Vec<UtilPower> = utils
            .iter()
            .map(|&u| UtilPower { utilization: u, power: Watts(u * rated) })
            .collect();
        let idx = proportionality_index_rated(&o, Watts(rated));
        prop_assert!((idx - 1.0).abs() < 1e-12, "ideal line scores {idx}");
    }

    /// Stacking a constant idle draw on every observation never improves
    /// the rated score, and strictly hurts once the draw exceeds the
    /// proportional allowance somewhere.
    #[test]
    fn added_idle_power_never_raises_the_score(
        pairs in proptest::collection::vec((0.0f64..1.0, 0.0f64..200.0), 1..24),
        rated in 100.0f64..400.0,
        idle_steps in proptest::collection::vec(1.0f64..40.0, 1..6),
    ) {
        let p = Watts(rated);
        let mut o = obs(&pairs);
        let mut prev = proportionality_index_rated(&o, p);
        for step in idle_steps {
            for ob in &mut o {
                ob.power = Watts(ob.power.0 + step);
            }
            let next = proportionality_index_rated(&o, p);
            prop_assert!(
                next <= prev + 1e-12,
                "idle +{step} W raised the index {prev} -> {next}"
            );
            prev = next;
        }
    }
}
