//! Power and energy models for WattDB-RS.
//!
//! Substitutes the paper's wall-socket power meter: node, drive, and switch
//! power draws are computed from measured (virtual-time) utilization using
//! the calibrated model of §3.1, and integrated into Joules by the
//! [`EnergyMeter`]. Also provides energy-proportionality metrics matching
//! the paper's motivation (§1) and a [`scorecard`] that grades an
//! exported telemetry timeline against the ideal `P(u) = u · P_peak`
//! line.

pub mod meter;
pub mod power;
pub mod proportionality;
pub mod scorecard;

pub use meter::{EnergyMeter, PowerSample};
pub use power::{NodeState, PowerModel};
pub use proportionality::{
    idle_to_peak_ratio, proportionality_index, proportionality_index_rated, UtilPower,
};
pub use scorecard::{score_export, score_jsonl, PhaseScore, PhaseSpan, Scorecard};
