//! Power and energy models for WattDB-RS.
//!
//! Substitutes the paper's wall-socket power meter: node, drive, and switch
//! power draws are computed from measured (virtual-time) utilization using
//! the calibrated model of §3.1, and integrated into Joules by the
//! [`EnergyMeter`]. Also provides energy-proportionality metrics matching
//! the paper's motivation (§1).

pub mod meter;
pub mod power;
pub mod proportionality;

pub use meter::{EnergyMeter, PowerSample};
pub use power::{NodeState, PowerModel};
pub use proportionality::{idle_to_peak_ratio, proportionality_index, UtilPower};
