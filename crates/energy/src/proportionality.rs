//! Energy-proportionality metrics.
//!
//! The paper's motivation (§1, citing Barroso & Hölzle) is that single
//! servers draw ~50 % of peak power at idle and hence are far from energy
//! proportional. This module quantifies that: given (utilization, power)
//! observations, it computes how close a system tracks the ideal
//! `P(u) = u · P(1.0)` line.

use wattdb_common::Watts;

/// One observation: system-level utilization and the power drawn there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilPower {
    /// Utilization in \[0,1\].
    pub utilization: f64,
    /// Observed power.
    pub power: Watts,
}

/// Energy-proportionality index against a **rated** peak power.
///
/// Defined as `1 - mean(excess)`, where `excess` at each observation is
/// the power drawn beyond proportional, normalized by the rated peak:
/// `(P(u) - u·P_peak) / P_peak`. A perfectly proportional system scores
/// 1.0; a system drawing peak power at idle scores ~0.
///
/// `p_peak` should be the deployment's *rated* peak — every node active
/// at full utilization — not the highest power the trace happened to
/// observe. An observed peak is a trace-dependent yardstick: the same
/// power curve scores differently depending on whether the trace
/// captured a full-load moment, and two runs on the same hardware
/// (autopilot vs. a static baseline) are graded against different ideal
/// lines. The rated form pins the yardstick to the deployment's
/// capacity, making scores comparable across runs.
pub fn proportionality_index_rated(observations: &[UtilPower], p_peak: Watts) -> f64 {
    let peak = p_peak.0;
    if observations.is_empty() || !peak.is_finite() || peak <= 0.0 {
        return 0.0;
    }
    let mean_excess: f64 = observations
        .iter()
        .map(|o| ((o.power.0 - o.utilization.clamp(0.0, 1.0) * peak) / peak).max(0.0))
        .sum::<f64>()
        / observations.len() as f64;
    (1.0 - mean_excess).clamp(0.0, 1.0)
}

/// Energy-proportionality index normalized by the **observed** peak —
/// the legacy form, which delegates to
/// [`proportionality_index_rated`] with the highest power in the
/// observations. Prefer the rated form when the deployment's `P_peak`
/// is known (see `WattDb::rated_peak_watts` in `wattdb-core`).
pub fn proportionality_index(observations: &[UtilPower]) -> f64 {
    let peak = observations
        .iter()
        .map(|o| o.power.0)
        .fold(f64::NAN, f64::max);
    if !peak.is_finite() {
        return 0.0;
    }
    proportionality_index_rated(observations, Watts(peak))
}

/// The "power range" figure of merit: idle power as a fraction of peak.
/// Barroso & Hölzle report ~0.5 for the servers that motivated the paper.
pub fn idle_to_peak_ratio(observations: &[UtilPower]) -> f64 {
    let peak = observations
        .iter()
        .map(|o| o.power.0)
        .fold(f64::NAN, f64::max);
    let idle = observations
        .iter()
        .filter(|o| o.utilization <= 0.05)
        .map(|o| o.power.0)
        .fold(f64::NAN, f64::min);
    if peak.is_finite() && idle.is_finite() && peak > 0.0 {
        idle / peak
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(pairs: &[(f64, f64)]) -> Vec<UtilPower> {
        pairs
            .iter()
            .map(|&(u, p)| UtilPower {
                utilization: u,
                power: Watts(p),
            })
            .collect()
    }

    #[test]
    fn perfectly_proportional_scores_one() {
        let o = obs(&[(0.0, 0.0), (0.25, 25.0), (0.5, 50.0), (1.0, 100.0)]);
        assert!((proportionality_index(&o) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn flat_power_scores_low() {
        // Draws peak power regardless of utilization.
        let o = obs(&[(0.0, 100.0), (0.5, 100.0), (1.0, 100.0)]);
        let idx = proportionality_index(&o);
        assert!(idx < 0.6, "flat curve should score poorly, got {idx}");
    }

    #[test]
    fn single_server_vs_cluster_shape() {
        // Single brawny server: 50 % at idle (the paper's motivation).
        let server = obs(&[(0.0, 50.0), (0.5, 75.0), (1.0, 100.0)]);
        // Node-deactivating cluster: near-proportional steps.
        let cluster = obs(&[(0.0, 12.0), (0.5, 55.0), (1.0, 100.0)]);
        assert!(proportionality_index(&cluster) > proportionality_index(&server));
        assert!((idle_to_peak_ratio(&server) - 0.5).abs() < 1e-9);
        assert!(idle_to_peak_ratio(&cluster) < 0.2);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(proportionality_index(&[]), 0.0);
        assert_eq!(proportionality_index_rated(&[], Watts(100.0)), 0.0);
        assert_eq!(
            proportionality_index_rated(&obs(&[(0.5, 50.0)]), Watts(0.0)),
            0.0
        );
        assert_eq!(idle_to_peak_ratio(&[]), 0.0);
    }

    #[test]
    fn rated_peak_fixes_the_yardstick_across_runs() {
        // The same near-proportional power curve, once captured through
        // its full-load moment and once truncated before it. The rated
        // form scores both runs almost identically; the observed-peak
        // form re-draws the ideal line through whatever the shorter
        // trace happened to see and grades it far more harshly.
        let full = obs(&[(0.1, 30.0), (0.5, 100.0), (1.0, 200.0)]);
        let partial = obs(&[(0.1, 30.0), (0.5, 100.0)]);
        let rated = Watts(200.0);
        let r_full = proportionality_index_rated(&full, rated);
        let r_partial = proportionality_index_rated(&partial, rated);
        assert!(
            (r_full - r_partial).abs() < 0.03,
            "rated yardstick stable: {r_full} vs {r_partial}"
        );
        let o_partial = proportionality_index(&partial);
        assert!(
            r_partial - o_partial > 0.2,
            "observed peak re-grades the truncated run: rated {r_partial}, observed {o_partial}"
        );
        // With the rated peak equal to the observed peak both agree.
        let a = proportionality_index(&full);
        let b = proportionality_index_rated(&full, Watts(200.0));
        assert!((a - b).abs() < 1e-12);
    }
}
