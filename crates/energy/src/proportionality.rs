//! Energy-proportionality metrics.
//!
//! The paper's motivation (§1, citing Barroso & Hölzle) is that single
//! servers draw ~50 % of peak power at idle and hence are far from energy
//! proportional. This module quantifies that: given (utilization, power)
//! observations, it computes how close a system tracks the ideal
//! `P(u) = u · P(1.0)` line.

use wattdb_common::Watts;

/// One observation: system-level utilization and the power drawn there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilPower {
    /// Utilization in \[0,1\].
    pub utilization: f64,
    /// Observed power.
    pub power: Watts,
}

/// Energy-proportionality index over a set of observations.
///
/// Defined as `1 - mean(excess)`, where `excess` at each observation is the
/// power drawn beyond proportional, normalized by peak power:
/// `(P(u) - u·P_peak) / P_peak`. A perfectly proportional system scores 1.0;
/// a system drawing peak power at idle scores ~0.
pub fn proportionality_index(observations: &[UtilPower]) -> f64 {
    let peak = observations
        .iter()
        .map(|o| o.power.0)
        .fold(f64::NAN, f64::max);
    if observations.is_empty() || !peak.is_finite() || peak <= 0.0 {
        return 0.0;
    }
    let mean_excess: f64 = observations
        .iter()
        .map(|o| ((o.power.0 - o.utilization.clamp(0.0, 1.0) * peak) / peak).max(0.0))
        .sum::<f64>()
        / observations.len() as f64;
    (1.0 - mean_excess).clamp(0.0, 1.0)
}

/// The "power range" figure of merit: idle power as a fraction of peak.
/// Barroso & Hölzle report ~0.5 for the servers that motivated the paper.
pub fn idle_to_peak_ratio(observations: &[UtilPower]) -> f64 {
    let peak = observations
        .iter()
        .map(|o| o.power.0)
        .fold(f64::NAN, f64::max);
    let idle = observations
        .iter()
        .filter(|o| o.utilization <= 0.05)
        .map(|o| o.power.0)
        .fold(f64::NAN, f64::min);
    if peak.is_finite() && idle.is_finite() && peak > 0.0 {
        idle / peak
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(pairs: &[(f64, f64)]) -> Vec<UtilPower> {
        pairs
            .iter()
            .map(|&(u, p)| UtilPower {
                utilization: u,
                power: Watts(p),
            })
            .collect()
    }

    #[test]
    fn perfectly_proportional_scores_one() {
        let o = obs(&[(0.0, 0.0), (0.25, 25.0), (0.5, 50.0), (1.0, 100.0)]);
        assert!((proportionality_index(&o) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn flat_power_scores_low() {
        // Draws peak power regardless of utilization.
        let o = obs(&[(0.0, 100.0), (0.5, 100.0), (1.0, 100.0)]);
        let idx = proportionality_index(&o);
        assert!(idx < 0.6, "flat curve should score poorly, got {idx}");
    }

    #[test]
    fn single_server_vs_cluster_shape() {
        // Single brawny server: 50 % at idle (the paper's motivation).
        let server = obs(&[(0.0, 50.0), (0.5, 75.0), (1.0, 100.0)]);
        // Node-deactivating cluster: near-proportional steps.
        let cluster = obs(&[(0.0, 12.0), (0.5, 55.0), (1.0, 100.0)]);
        assert!(proportionality_index(&cluster) > proportionality_index(&server));
        assert!((idle_to_peak_ratio(&server) - 0.5).abs() < 1e-9);
        assert!(idle_to_peak_ratio(&cluster) < 0.2);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(proportionality_index(&[]), 0.0);
        assert_eq!(idle_to_peak_ratio(&[]), 0.0);
    }
}
