//! The energy-proportionality scorecard: grade an exported telemetry
//! timeline against the paper's headline claim.
//!
//! §1's motivation is a cluster whose power draw tracks
//! `P(u) = u · P_peak` instead of idling at ~50 % of peak. The PR 7
//! telemetry already samples watts, cumulative Joules, throughput, and
//! response percentiles every monitoring window into the JSONL timeline
//! (`BENCH_timeline.jsonl`); this module re-reads that export — through
//! the same [`wattdb_telemetry::parse_jsonl`] the CI schema check uses —
//! and condenses a whole trace-driven run into one [`Scorecard`]:
//!
//! * the proportionality index against the **rated** peak
//!   ([`crate::proportionality_index_rated`]) and, for reference, the
//!   legacy observed-peak form;
//! * mean and peak watts over the run;
//! * Wh per committed transaction, overall and per trace phase
//!   (trough/shoulder/peak, baseline/ramp/burst/decay);
//! * the response-time p95 ceiling — the worst window's p95, i.e. what
//!   elasticity cost the clients at its most expensive moment;
//! * a nodes-powered histogram (how many windows ran on how many nodes).
//!
//! Utilization per window is the offered load: the
//! `workload.target_clients` gauge (the trace's modeled-client target)
//! normalized by its trace-wide maximum, falling back to normalized
//! throughput for runs without a pooled workload. Offered load is the
//! right `u` for the ideal line — a static cluster that burns peak
//! watts at 10 % load must score badly *because* the load was low.

use std::collections::BTreeMap;

use wattdb_common::{SimTime, Watts};
use wattdb_telemetry::{parse_jsonl, SchemaError, TimelineExport, WindowSample};

use crate::proportionality::{proportionality_index, proportionality_index_rated, UtilPower};

/// One labelled stretch of the trace, in absolute sim-time (a trace
/// started at t = 0 can use its breakpoint offsets directly).
#[derive(Debug, Clone)]
pub struct PhaseSpan {
    /// Phase label (`trough`, `peak`, `burst`, …).
    pub label: String,
    /// Span start (inclusive).
    pub start: SimTime,
    /// Span end (exclusive).
    pub end: SimTime,
}

impl PhaseSpan {
    /// A span from microsecond offsets — the shape
    /// `LoadTrace::phase_spans` produces.
    pub fn new(label: impl Into<String>, start: SimTime, end: SimTime) -> Self {
        Self {
            label: label.into(),
            start,
            end,
        }
    }
}

/// Per-phase slice of the scorecard.
#[derive(Debug, Clone)]
pub struct PhaseScore {
    /// Phase label.
    pub label: String,
    /// Monitoring windows that closed inside the phase.
    pub windows: u64,
    /// Mean power over those windows.
    pub mean_watts: f64,
    /// Modeled transactions committed during the phase.
    pub committed: u64,
    /// Watt-hours per committed transaction within the phase (0 when
    /// the phase committed nothing).
    pub wh_per_txn: f64,
}

/// The condensed verdict over one exported run.
#[derive(Debug, Clone)]
pub struct Scorecard {
    /// Monitoring windows scored.
    pub windows: u64,
    /// Proportionality index vs. the rated `P_peak` ideal line.
    pub proportionality_rated: f64,
    /// Legacy observed-peak index, for comparison with older runs.
    pub proportionality_observed: f64,
    /// Mean power across windows.
    pub mean_watts: f64,
    /// Highest per-window power.
    pub peak_watts: f64,
    /// Rated peak the ideal line was drawn against.
    pub rated_watts: f64,
    /// Total modeled transactions committed.
    pub committed: u64,
    /// Watt-hours per committed transaction over the whole run.
    pub wh_per_txn: f64,
    /// Worst per-window p95 response time, in milliseconds.
    pub p95_ceiling_ms: f64,
    /// `(active nodes, windows at that count)`, ascending.
    pub nodes_powered: Vec<(u64, u64)>,
    /// Per-phase breakdown, in phase order.
    pub phases: Vec<PhaseScore>,
}

/// Count the `node.{i}.active` gauges reading 1 in a window.
fn nodes_active(s: &WindowSample) -> u64 {
    s.values
        .iter()
        .filter(|(k, v)| k.starts_with("node.") && k.ends_with(".active") && **v > 0.5)
        .count() as u64
}

/// Score a parsed timeline export. `phases` slices the per-phase
/// Wh-per-transaction table (pass `&[]` to skip it); `rated_peak` is
/// the deployment's all-nodes-at-full-tilt draw (see
/// `WattDb::rated_peak_watts`).
pub fn score_export(export: &TimelineExport, phases: &[PhaseSpan], rated_peak: Watts) -> Scorecard {
    let samples = &export.samples;
    // Offered-load utilization: target clients normalized by the
    // trace-wide maximum; throughput-normalized fallback for runs
    // without a pooled workload.
    let max_target = samples
        .iter()
        .filter_map(|s| s.value("workload.target_clients"))
        .fold(0.0, f64::max);
    let max_tput = samples
        .iter()
        .filter_map(|s| s.value("txn.throughput"))
        .fold(0.0, f64::max);
    let util = |s: &WindowSample| -> f64 {
        match s.value("workload.target_clients") {
            Some(t) if max_target > 0.0 => t / max_target,
            _ if max_tput > 0.0 => s.value("txn.throughput").unwrap_or(0.0) / max_tput,
            _ => 0.0,
        }
    };
    let mut obs = Vec::with_capacity(samples.len());
    let mut powers = Vec::with_capacity(samples.len());
    let mut p95_ceiling: f64 = 0.0;
    let mut nodes_hist: BTreeMap<u64, u64> = BTreeMap::new();
    for s in samples {
        let Some(watts) = s.value("power.watts") else {
            continue; // window before the first 1 Hz power sample
        };
        obs.push(UtilPower {
            utilization: util(s),
            power: Watts(watts),
        });
        powers.push(watts);
        p95_ceiling = p95_ceiling.max(s.value("txn.response_ms.p95").unwrap_or(0.0));
        *nodes_hist.entry(nodes_active(s)).or_insert(0) += 1;
    }
    let committed = samples
        .last()
        .and_then(|s| s.value("txn.completed"))
        .unwrap_or(0.0) as u64;
    let joules = samples
        .last()
        .and_then(|s| s.value("energy.joules"))
        .unwrap_or(0.0);
    let wh_per_txn = if committed > 0 {
        joules / 3600.0 / committed as f64
    } else {
        0.0
    };
    // Per-phase deltas: Joules and completions are cumulative gauges,
    // so each phase reads the last sample inside it minus the last
    // sample before it.
    let mut phase_scores = Vec::with_capacity(phases.len());
    for span in phases {
        let before = samples
            .iter()
            .rfind(|s| s.at < span.start)
            .map(|s| {
                (
                    s.value("energy.joules").unwrap_or(0.0),
                    s.value("txn.completed").unwrap_or(0.0),
                )
            })
            .unwrap_or((0.0, 0.0));
        let inside: Vec<&WindowSample> = samples
            .iter()
            .filter(|s| s.at >= span.start && s.at < span.end)
            .collect();
        let last = inside
            .last()
            .map(|s| {
                (
                    s.value("energy.joules").unwrap_or(0.0),
                    s.value("txn.completed").unwrap_or(0.0),
                )
            })
            .unwrap_or(before);
        let phase_watts: Vec<f64> = inside
            .iter()
            .filter_map(|s| s.value("power.watts"))
            .collect();
        let committed = (last.1 - before.1).max(0.0) as u64;
        let joules = (last.0 - before.0).max(0.0);
        phase_scores.push(PhaseScore {
            label: span.label.clone(),
            windows: inside.len() as u64,
            mean_watts: if phase_watts.is_empty() {
                0.0
            } else {
                phase_watts.iter().sum::<f64>() / phase_watts.len() as f64
            },
            committed,
            wh_per_txn: if committed > 0 {
                joules / 3600.0 / committed as f64
            } else {
                0.0
            },
        });
    }
    Scorecard {
        windows: obs.len() as u64,
        proportionality_rated: proportionality_index_rated(&obs, rated_peak),
        proportionality_observed: proportionality_index(&obs),
        mean_watts: if powers.is_empty() {
            0.0
        } else {
            powers.iter().sum::<f64>() / powers.len() as f64
        },
        peak_watts: powers.iter().copied().fold(0.0, f64::max),
        rated_watts: rated_peak.0,
        committed,
        wh_per_txn,
        p95_ceiling_ms: p95_ceiling,
        nodes_powered: nodes_hist.into_iter().collect(),
        phases: phase_scores,
    }
}

/// Parse a JSONL timeline export (the `BENCH_timeline.jsonl` format)
/// and score it — the one-call path for benches and offline analysis.
pub fn score_jsonl(
    text: &str,
    phases: &[PhaseSpan],
    rated_peak: Watts,
) -> Result<Scorecard, SchemaError> {
    Ok(score_export(&parse_jsonl(text)?, phases, rated_peak))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthesize an export via the real registry so the sample shape
    /// matches what `sample_window` produces.
    fn export(windows: &[(u64, f64, f64, f64, f64, u64)]) -> TimelineExport {
        // (secs, target, watts, joules, completed, active_nodes)
        let mut reg = wattdb_telemetry::MetricsRegistry::new(1024);
        for &(secs, target, watts, joules, completed, active) in windows {
            reg.set_gauge("workload.target_clients", target);
            reg.set_gauge("power.watts", watts);
            reg.set_gauge("energy.joules", joules);
            reg.set_counter("txn.completed", completed as u64);
            reg.set_gauge("txn.response_ms.p95", 8.0 + target / 100.0);
            for n in 0..4u32 {
                reg.set_gauge(
                    &format!("node.{n}.active"),
                    if (n as u64) < active { 1.0 } else { 0.0 },
                );
            }
            reg.sample_window(SimTime::from_secs(secs));
        }
        TimelineExport {
            samples: reg.samples().cloned().collect(),
            ..Default::default()
        }
    }

    #[test]
    fn proportional_run_outscores_flat_run_under_the_same_rated_peak() {
        let rated = Watts(160.0);
        // Elastic: watts track the target curve. Static: flat near-peak.
        let elastic = export(&[
            (5, 100.0, 30.0, 150.0, 50.0, 1),
            (10, 500.0, 60.0, 450.0, 200.0, 2),
            (15, 1000.0, 120.0, 1050.0, 500.0, 3),
            (20, 500.0, 62.0, 1360.0, 700.0, 2),
        ]);
        let flat = export(&[
            (5, 100.0, 140.0, 700.0, 50.0, 4),
            (10, 500.0, 142.0, 1410.0, 200.0, 4),
            (15, 1000.0, 145.0, 2135.0, 500.0, 4),
            (20, 500.0, 141.0, 2840.0, 700.0, 4),
        ]);
        let e = score_export(&elastic, &[], rated);
        let f = score_export(&flat, &[], rated);
        assert_eq!(e.windows, 4);
        assert!(
            e.proportionality_rated > f.proportionality_rated,
            "elastic {} must beat static {}",
            e.proportionality_rated,
            f.proportionality_rated
        );
        assert!(f.mean_watts > e.mean_watts);
        assert_eq!(f.nodes_powered, vec![(4, 4)]);
        assert_eq!(e.nodes_powered, vec![(1, 1), (2, 2), (3, 1)]);
        assert!(e.wh_per_txn > 0.0 && f.wh_per_txn > e.wh_per_txn);
        assert!(e.p95_ceiling_ms >= 8.0);
    }

    #[test]
    fn phase_slices_take_cumulative_deltas() {
        let ex = export(&[
            (5, 100.0, 30.0, 150.0, 100.0, 1),
            (10, 100.0, 30.0, 300.0, 200.0, 1),
            (15, 900.0, 120.0, 900.0, 600.0, 3),
            (20, 900.0, 120.0, 1500.0, 1000.0, 3),
        ]);
        let at = SimTime::from_secs;
        let phases = vec![
            PhaseSpan::new("trough", at(0), at(11)),
            PhaseSpan::new("peak", at(11), at(21)),
        ];
        let card = score_export(&ex, &phases, Watts(160.0));
        assert_eq!(card.phases.len(), 2);
        let (trough, peak) = (&card.phases[0], &card.phases[1]);
        assert_eq!(trough.windows, 2);
        assert_eq!(trough.committed, 200);
        assert_eq!(peak.committed, 800);
        // Trough: 300 J / 200 txn; peak: 1200 J / 800 txn.
        assert!((trough.wh_per_txn - 300.0 / 3600.0 / 200.0).abs() < 1e-12);
        assert!((peak.wh_per_txn - 1200.0 / 3600.0 / 800.0).abs() < 1e-12);
        assert!(peak.mean_watts > trough.mean_watts);
    }

    #[test]
    fn empty_export_scores_zero() {
        let card = score_export(&TimelineExport::default(), &[], Watts(100.0));
        assert_eq!(card.windows, 0);
        assert_eq!(card.proportionality_rated, 0.0);
        assert_eq!(card.committed, 0);
        assert!(card.nodes_powered.is_empty());
    }

    #[test]
    fn jsonl_round_trip_scores_identically() {
        // An export serialized by the real recorder must parse and score.
        let mut tel = wattdb_telemetry::Telemetry::new();
        tel.registry.set_gauge("workload.target_clients", 400.0);
        tel.registry.set_gauge("power.watts", 90.0);
        tel.registry.set_gauge("energy.joules", 450.0);
        tel.registry.set_counter("txn.completed", 300);
        tel.registry.set_gauge("node.0.active", 1.0);
        tel.registry.sample_window(SimTime::from_secs(5));
        let text = tel.export_jsonl();
        let card = score_jsonl(&text, &[], Watts(150.0)).expect("own export scores");
        assert_eq!(card.windows, 1);
        assert_eq!(card.committed, 300);
        assert_eq!(card.nodes_powered, vec![(1, 1)]);
    }
}
