//! Power models for cluster components (§3.1 of the paper).
//!
//! The testbed nodes draw 22–26 W when active — linear in utilization — and
//! 2.5 W in standby; the Gigabit switch draws a constant 20 W and "is
//! included in all measurements". Drives add their own draw while their
//! node is powered.

use wattdb_common::config::DiskKind;
use wattdb_common::{PowerSpec, Watts};

/// Power state of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeState {
    /// Powered and participating in the cluster.
    Active,
    /// Suspended-to-RAM: drawing standby power, not serving.
    Standby,
}

/// Computes component power draws from the calibrated [`PowerSpec`].
#[derive(Debug, Clone, Copy)]
pub struct PowerModel {
    spec: PowerSpec,
}

impl PowerModel {
    /// Model with the given spec.
    pub fn new(spec: PowerSpec) -> Self {
        Self { spec }
    }

    /// The underlying spec.
    pub fn spec(&self) -> &PowerSpec {
        &self.spec
    }

    /// Node draw excluding drives: linear between idle and max with CPU
    /// utilization in \[0,1\]; standby draw when suspended.
    pub fn node_power(&self, state: NodeState, utilization: f64) -> Watts {
        match state {
            NodeState::Standby => Watts(self.spec.node_standby_w),
            NodeState::Active => {
                let u = utilization.clamp(0.0, 1.0);
                Watts(self.spec.node_idle_w + u * (self.spec.node_max_w - self.spec.node_idle_w))
            }
        }
    }

    /// One drive's draw while its node is active. Drives on standby nodes
    /// draw nothing (spun down / powered off with the node).
    pub fn disk_power(&self, kind: DiskKind, node_state: NodeState) -> Watts {
        match node_state {
            NodeState::Standby => Watts::ZERO,
            NodeState::Active => match kind {
                DiskKind::Hdd => Watts(self.spec.hdd_w),
                DiskKind::Ssd => Watts(self.spec.ssd_w),
            },
        }
    }

    /// The interconnect switch: always on.
    pub fn switch_power(&self) -> Watts {
        Watts(self.spec.switch_w)
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::new(PowerSpec::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_power_linear_in_utilization() {
        let m = PowerModel::default();
        assert_eq!(m.node_power(NodeState::Active, 0.0), Watts(22.0));
        assert_eq!(m.node_power(NodeState::Active, 1.0), Watts(26.0));
        assert_eq!(m.node_power(NodeState::Active, 0.5), Watts(24.0));
        // Clamped outside [0,1].
        assert_eq!(m.node_power(NodeState::Active, 7.0), Watts(26.0));
        assert_eq!(m.node_power(NodeState::Active, -1.0), Watts(22.0));
    }

    #[test]
    fn standby_power() {
        let m = PowerModel::default();
        assert_eq!(m.node_power(NodeState::Standby, 0.9), Watts(2.5));
        assert_eq!(m.disk_power(DiskKind::Hdd, NodeState::Standby), Watts::ZERO);
    }

    #[test]
    fn drive_and_switch_power() {
        let m = PowerModel::default();
        assert_eq!(m.disk_power(DiskKind::Hdd, NodeState::Active), Watts(6.0));
        assert_eq!(m.disk_power(DiskKind::Ssd, NodeState::Active), Watts(1.5));
        assert_eq!(m.switch_power(), Watts(20.0));
    }
}
