//! Energy metering: integrating cluster power over virtual time.
//!
//! The meter is fed a power sample per interval (like the wall-socket meter
//! in the paper's testbed) and accumulates Joules; per-interval Watt
//! readings and Joule-per-query series come out the other side — the data
//! behind Fig. 6c/d and 8c/d.

use wattdb_common::{Joules, SimDuration, SimTime, Watts};

/// One reading in the power time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSample {
    /// Start of the sampled interval.
    pub at: SimTime,
    /// Mean power draw during the interval.
    pub power: Watts,
    /// Queries completed during the interval (for J/query).
    pub queries: u64,
}

impl PowerSample {
    /// Energy per query in this interval; `None` when no queries completed.
    pub fn joules_per_query(&self, width: SimDuration) -> Option<Joules> {
        if self.queries == 0 {
            None
        } else {
            Some(Joules(self.power.over(width).0 / self.queries as f64))
        }
    }
}

/// Accumulates power samples into total energy plus a time series.
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    last_sample_at: SimTime,
    total: Joules,
    series: Vec<PowerSample>,
}

impl EnergyMeter {
    /// A meter starting at `t0`.
    pub fn new(t0: SimTime) -> Self {
        Self {
            last_sample_at: t0,
            total: Joules::ZERO,
            series: Vec::new(),
        }
    }

    /// Record that the cluster drew (on average) `power` from the previous
    /// sample time up to `now`, completing `queries` queries in the
    /// interval.
    pub fn sample(&mut self, now: SimTime, power: Watts, queries: u64) {
        let width = now.since(self.last_sample_at);
        self.total += power.over(width);
        self.series.push(PowerSample {
            at: self.last_sample_at,
            power,
            queries,
        });
        self.last_sample_at = now;
    }

    /// Total energy consumed so far.
    pub fn total_energy(&self) -> Joules {
        self.total
    }

    /// The recorded series.
    pub fn series(&self) -> &[PowerSample] {
        &self.series
    }

    /// Total queries across all samples.
    pub fn total_queries(&self) -> u64 {
        self.series.iter().map(|s| s.queries).sum()
    }

    /// Mean energy per query over the entire run; `None` if no queries.
    pub fn mean_joules_per_query(&self) -> Option<Joules> {
        let q = self.total_queries();
        if q == 0 {
            None
        } else {
            Some(Joules(self.total.0 / q as f64))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_power_integration() {
        let mut m = EnergyMeter::new(SimTime::ZERO);
        // 100 W for 10 s, sampled each second = 1000 J.
        for s in 1..=10 {
            m.sample(SimTime::from_secs(s), Watts(100.0), 5);
        }
        assert!((m.total_energy().0 - 1000.0).abs() < 1e-9);
        assert_eq!(m.total_queries(), 50);
        assert!((m.mean_joules_per_query().unwrap().0 - 20.0).abs() < 1e-9);
    }

    #[test]
    fn varying_power() {
        let mut m = EnergyMeter::new(SimTime::ZERO);
        m.sample(SimTime::from_secs(2), Watts(50.0), 0); // 100 J
        m.sample(SimTime::from_secs(3), Watts(200.0), 4); // 200 J
        assert!((m.total_energy().0 - 300.0).abs() < 1e-9);
        assert_eq!(m.series().len(), 2);
        assert_eq!(m.series()[0].at, SimTime::ZERO);
        assert_eq!(m.series()[1].at, SimTime::from_secs(2));
    }

    #[test]
    fn joules_per_query_sample() {
        let s = PowerSample {
            at: SimTime::ZERO,
            power: Watts(120.0),
            queries: 60,
        };
        // 120 W over 10 s = 1200 J over 60 queries = 20 J/query.
        let jpq = s.joules_per_query(SimDuration::from_secs(10)).unwrap();
        assert!((jpq.0 - 20.0).abs() < 1e-9);
        let idle = PowerSample {
            at: SimTime::ZERO,
            power: Watts(120.0),
            queries: 0,
        };
        assert!(idle.joules_per_query(SimDuration::from_secs(10)).is_none());
    }

    #[test]
    fn empty_meter() {
        let m = EnergyMeter::new(SimTime::from_secs(5));
        assert_eq!(m.total_energy(), Joules::ZERO);
        assert!(m.mean_joules_per_query().is_none());
    }
}
