//! Primary keys and half-open key ranges.
//!
//! WattDB partitions tables horizontally by primary-key ranges (§4). A `Key`
//! is a 64-bit composite: the TPC-C layer packs (table-specific) component
//! fields into it, and partitioning logic treats it as an opaque ordered
//! integer. `KeyRange` is half-open `[start, end)` so ranges tile a key space
//! without overlap.

use std::fmt;

/// A 64-bit primary key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Key(pub u64);

impl Key {
    /// Smallest possible key.
    pub const MIN: Key = Key(0);
    /// Largest possible key.
    pub const MAX: Key = Key(u64::MAX);

    /// Raw value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl From<u64> for Key {
    fn from(v: u64) -> Self {
        Key(v)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// A half-open key range `[start, end)`.
///
/// The full key space is `KeyRange::all()`. An empty range has
/// `start >= end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KeyRange {
    /// Inclusive lower bound.
    pub start: Key,
    /// Exclusive upper bound.
    pub end: Key,
}

impl KeyRange {
    /// The range covering the entire key space `[0, u64::MAX)`.
    ///
    /// `u64::MAX` itself is reserved as an unreachable sentinel so the
    /// half-open representation can cover "everything".
    pub fn all() -> Self {
        KeyRange {
            start: Key::MIN,
            end: Key::MAX,
        }
    }

    /// Construct `[start, end)`.
    pub fn new(start: Key, end: Key) -> Self {
        KeyRange { start, end }
    }

    /// True if the range contains no keys.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// True if `key` falls inside the range.
    #[inline]
    pub fn contains(&self, key: Key) -> bool {
        key >= self.start && key < self.end
    }

    /// True if the two ranges share at least one key.
    #[inline]
    pub fn overlaps(&self, other: &KeyRange) -> bool {
        !self.is_empty() && !other.is_empty() && self.start < other.end && other.start < self.end
    }

    /// True if `other` is fully contained in `self`.
    #[inline]
    pub fn covers(&self, other: &KeyRange) -> bool {
        other.is_empty() || (other.start >= self.start && other.end <= self.end)
    }

    /// Split at `mid`, returning `([start, mid), [mid, end))`.
    ///
    /// Returns `None` if `mid` is outside `(start, end)`; splitting at a
    /// boundary would produce an empty half.
    pub fn split_at(&self, mid: Key) -> Option<(KeyRange, KeyRange)> {
        if mid > self.start && mid < self.end {
            Some((KeyRange::new(self.start, mid), KeyRange::new(mid, self.end)))
        } else {
            None
        }
    }

    /// The intersection of two ranges (possibly empty).
    pub fn intersect(&self, other: &KeyRange) -> KeyRange {
        KeyRange {
            start: self.start.max(other.start),
            end: self.end.min(other.end),
        }
    }

    /// Partition `[0, n·step)`-style: cut the full range `[lo, hi)` into `n`
    /// near-equal contiguous chunks. Used when initially partitioning a table
    /// across nodes. Always returns exactly `n` non-empty ranges when the
    /// span is at least `n` keys wide.
    pub fn chunks(lo: Key, hi: Key, n: usize) -> Vec<KeyRange> {
        assert!(n > 0, "cannot split into zero chunks");
        let span = hi.0.saturating_sub(lo.0);
        let base = span / n as u64;
        let rem = span % n as u64;
        let mut out = Vec::with_capacity(n);
        let mut cur = lo.0;
        for i in 0..n {
            let width = base + u64::from((i as u64) < rem);
            let next = cur + width;
            out.push(KeyRange::new(Key(cur), Key(next)));
            cur = next;
        }
        out
    }
}

impl fmt::Display for KeyRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start.0, self.end.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_and_bounds() {
        let r = KeyRange::new(Key(10), Key(20));
        assert!(r.contains(Key(10)));
        assert!(r.contains(Key(19)));
        assert!(!r.contains(Key(20)));
        assert!(!r.contains(Key(9)));
        assert!(!r.is_empty());
        assert!(KeyRange::new(Key(5), Key(5)).is_empty());
    }

    #[test]
    fn overlap_rules() {
        let a = KeyRange::new(Key(0), Key(10));
        let b = KeyRange::new(Key(10), Key(20));
        let c = KeyRange::new(Key(5), Key(15));
        assert!(!a.overlaps(&b), "adjacent half-open ranges do not overlap");
        assert!(a.overlaps(&c));
        assert!(b.overlaps(&c));
        let empty = KeyRange::new(Key(3), Key(3));
        assert!(!a.overlaps(&empty));
    }

    #[test]
    fn split() {
        let r = KeyRange::new(Key(0), Key(100));
        let (l, h) = r.split_at(Key(40)).unwrap();
        assert_eq!(l, KeyRange::new(Key(0), Key(40)));
        assert_eq!(h, KeyRange::new(Key(40), Key(100)));
        assert!(r.split_at(Key(0)).is_none());
        assert!(r.split_at(Key(100)).is_none());
        assert!(r.split_at(Key(200)).is_none());
    }

    #[test]
    fn chunk_tiling() {
        let chunks = KeyRange::chunks(Key(0), Key(103), 4);
        assert_eq!(chunks.len(), 4);
        // Chunks tile without gaps or overlap.
        assert_eq!(chunks[0].start, Key(0));
        assert_eq!(chunks[3].end, Key(103));
        for w in chunks.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        // Total width preserved.
        let total: u64 = chunks.iter().map(|c| c.end.0 - c.start.0).sum();
        assert_eq!(total, 103);
    }

    #[test]
    fn covers_and_intersect() {
        let outer = KeyRange::new(Key(0), Key(100));
        let inner = KeyRange::new(Key(30), Key(60));
        assert!(outer.covers(&inner));
        assert!(!inner.covers(&outer));
        assert_eq!(outer.intersect(&inner), inner);
        let left = KeyRange::new(Key(0), Key(40));
        assert_eq!(left.intersect(&inner), KeyRange::new(Key(30), Key(40)));
    }
}
