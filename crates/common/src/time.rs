//! Virtual time for the discrete-event simulation.
//!
//! All simulated hardware costs and experiment timelines are expressed in
//! microseconds of *virtual* time. Using a fixed integer representation keeps
//! the simulator deterministic (no float drift in the event queue ordering).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the virtual clock, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the epoch.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`; saturates at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest µs.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1e6).round().max(0.0) as u64)
    }

    /// Microseconds in this duration.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds in this duration, as a float (for reporting only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds in this duration, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.max(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_secs(2), SimTime(2_000_000));
        assert_eq!(SimTime::from_millis(3), SimTime(3_000));
        assert_eq!(SimDuration::from_secs_f64(0.0015).as_micros(), 1_500);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t, SimTime(1_500_000));
        assert_eq!(t - SimTime::from_secs(1), SimDuration::from_millis(500));
        // Subtracting a later time saturates instead of panicking.
        assert_eq!(SimTime::from_secs(1) - t, SimDuration::ZERO);
        assert_eq!(SimDuration::from_micros(10) * 3, SimDuration(30));
        assert_eq!(SimDuration::from_micros(10) / 4, SimDuration(2));
    }

    #[test]
    fn display() {
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
        assert_eq!(SimDuration::from_micros(2_500).to_string(), "2.500ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
        assert_eq!(SimTime::from_millis(1500).to_string(), "t=1.500s");
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(7);
        assert_eq!(b.since(a), SimDuration::from_secs(2));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }
}
