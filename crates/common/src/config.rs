//! Calibrated hardware, power, network, and CPU-cost parameters.
//!
//! Defaults reproduce the testbed described in §3.1 of the paper: ten
//! Amdahl-balanced wimpy nodes (Intel Atom D510, 2 GB DRAM, 1 HDD + 2 SSDs)
//! on Gigabit Ethernet, with the power envelope the authors report
//! (22–26 W active per node, 2.5 W standby, 20 W switch; minimal cluster
//! ≈ 70–75 W, fully loaded ≈ 260–280 W).

use crate::time::SimDuration;
use crate::units::ByteSize;

/// Kind of storage drive; determines the timing and power model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiskKind {
    /// Spinning disk: seek-dominated random I/O, decent sequential rate.
    Hdd,
    /// Flash drive: low latency, high IOPS.
    Ssd,
}

/// Timing/capacity parameters of one drive.
#[derive(Debug, Clone, Copy)]
pub struct DiskSpec {
    /// Drive kind.
    pub kind: DiskKind,
    /// Fixed per-request latency (seek+rotational for HDD, flash for SSD).
    pub access_latency: SimDuration,
    /// Sustained transfer bandwidth in bytes/second.
    pub bandwidth: u64,
    /// Usable capacity.
    pub capacity: ByteSize,
}

impl DiskSpec {
    /// A 2010-era 3.5" SATA HDD as in the Atom testbed.
    pub fn hdd() -> Self {
        Self {
            kind: DiskKind::Hdd,
            access_latency: SimDuration::from_micros(8_000),
            bandwidth: 100_000_000, // 100 MB/s sequential
            capacity: ByteSize::gib(500),
        }
    }

    /// A 2010-era SATA SSD.
    pub fn ssd() -> Self {
        Self {
            kind: DiskKind::Ssd,
            access_latency: SimDuration::from_micros(120),
            bandwidth: 230_000_000, // 230 MB/s
            capacity: ByteSize::gib(120),
        }
    }

    /// Service time for one request of `bytes`.
    pub fn service_time(&self, bytes: ByteSize) -> SimDuration {
        self.access_latency + bytes.transfer_time(self.bandwidth)
    }
}

/// Per-node hardware description.
#[derive(Debug, Clone)]
pub struct HardwareSpec {
    /// Physical CPU cores (Atom D510: 2 cores; hyper-threads are folded into
    /// the per-op CPU costs rather than modelled as extra cores).
    pub cpu_cores: u32,
    /// Main memory available to the buffer pool and sort workspaces.
    pub memory: ByteSize,
    /// Drives attached to this node (paper: 1 HDD + 2 SSDs).
    pub disks: Vec<DiskSpec>,
}

impl Default for HardwareSpec {
    fn default() -> Self {
        Self {
            cpu_cores: 2,
            memory: ByteSize::gib(2),
            disks: vec![DiskSpec::hdd(), DiskSpec::ssd(), DiskSpec::ssd()],
        }
    }
}

/// Power model parameters (§3.1).
#[derive(Debug, Clone, Copy)]
pub struct PowerSpec {
    /// Node power at idle (0 % utilization), drives excluded.
    pub node_idle_w: f64,
    /// Node power at 100 % utilization, drives excluded.
    pub node_max_w: f64,
    /// Node power in standby (suspended, not participating).
    pub node_standby_w: f64,
    /// Interconnect switch (always on, included in all measurements).
    pub switch_w: f64,
    /// Spinning HDD (idle ≈ active for drives of that era).
    pub hdd_w: f64,
    /// SSD average power.
    pub ssd_w: f64,
}

impl Default for PowerSpec {
    fn default() -> Self {
        Self {
            node_idle_w: 22.0,
            node_max_w: 26.0,
            node_standby_w: 2.5,
            switch_w: 20.0,
            hdd_w: 6.0,
            ssd_w: 1.5,
        }
    }
}

/// Network model parameters (§3.1, §3.3).
#[derive(Debug, Clone, Copy)]
pub struct NetworkSpec {
    /// NIC bandwidth, bytes/second, full duplex (Gigabit Ethernet).
    pub bandwidth: u64,
    /// One-way message latency: NIC + switch + NIC, excluding serialization.
    pub hop_latency: SimDuration,
    /// Fixed per-message software overhead (marshalling, syscalls) charged
    /// to CPU at both endpoints.
    pub per_message_cpu: SimDuration,
}

impl Default for NetworkSpec {
    fn default() -> Self {
        Self {
            bandwidth: 117_000_000, // ~1 Gbit/s minus framing overhead
            hop_latency: SimDuration::from_micros(450),
            per_message_cpu: SimDuration::from_micros(25),
        }
    }
}

/// CPU cost parameters for engine operations, expressed as core-µs on the
/// wimpy Atom cores. Calibrated so the Fig. 1 micro-benchmark lands near the
/// paper's absolute numbers (≈40 k records/s for a local scan).
///
/// This is the **single source of truth** for per-operator costs: the
/// query engine's `CostTrace` stages and the core executor's per-access
/// accounting both price their work from these fields (the executor used
/// to inline some of them as literals, which could silently diverge).
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// Producing one record from a table scan (page decode amortized).
    pub scan_per_record: SimDuration,
    /// One volcano `next()` call's invocation overhead (single-record mode).
    pub call_overhead: SimDuration,
    /// Applying a projection to one record.
    pub project_per_record: SimDuration,
    /// Comparison-sort work per record per log2(n) level.
    pub sort_per_record_level: SimDuration,
    /// Hash/group aggregation work per record.
    pub agg_per_record: SimDuration,
    /// One B-tree node inspection (binary search within a node).
    pub index_node_visit: SimDuration,
    /// Inserting/updating one record in a page (latching + slot work).
    pub record_write: SimDuration,
    /// Reading one record from a resident page.
    pub record_read: SimDuration,
    /// Appending one log record to the WAL buffer.
    pub log_append: SimDuration,
    /// Buffer-pool hit bookkeeping.
    pub buffer_hit: SimDuration,
    /// Master-side routing work per transaction (route table lookup and
    /// dispatch).
    pub txn_route: SimDuration,
    /// Acquiring and releasing the latch pair around one record operation.
    pub latch_pair: SimDuration,
    /// Spin before re-probing routing when a key sits in a moving window's
    /// edge (dual-pointer miss).
    pub route_retry_spin: SimDuration,
    /// Latching charged when an eviction triggers an asynchronous
    /// writeback (buffer churn).
    pub writeback_latch: SimDuration,
}

impl Default for CostParams {
    fn default() -> Self {
        Self {
            scan_per_record: SimDuration::from_micros(21),
            call_overhead: SimDuration::from_micros(4),
            project_per_record: SimDuration::from_micros(4),
            sort_per_record_level: SimDuration::from_micros(2),
            agg_per_record: SimDuration::from_micros(6),
            index_node_visit: SimDuration::from_micros(3),
            record_write: SimDuration::from_micros(8),
            record_read: SimDuration::from_micros(3),
            log_append: SimDuration::from_micros(2),
            buffer_hit: SimDuration::from_micros(1),
            txn_route: SimDuration::from_micros(20),
            latch_pair: SimDuration::from_micros(2),
            route_retry_spin: SimDuration::from_micros(50),
            writeback_latch: SimDuration::from_micros(20),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_service_times() {
        let hdd = DiskSpec::hdd();
        // 8 KiB read: 8 ms seek + ~82 µs transfer.
        let t = hdd.service_time(ByteSize::kib(8));
        assert!(t >= SimDuration::from_micros(8_000));
        assert!(t < SimDuration::from_micros(8_200));
        let ssd = DiskSpec::ssd();
        let t = ssd.service_time(ByteSize::kib(8));
        assert!(t < SimDuration::from_micros(200));
    }

    #[test]
    fn default_node_shape_matches_paper() {
        let hw = HardwareSpec::default();
        assert_eq!(hw.cpu_cores, 2);
        assert_eq!(hw.memory, ByteSize::gib(2));
        assert_eq!(hw.disks.len(), 3);
        assert_eq!(hw.disks[0].kind, DiskKind::Hdd);
        assert_eq!(hw.disks[1].kind, DiskKind::Ssd);
    }

    #[test]
    fn power_envelope_anchors() {
        let p = PowerSpec::default();
        // §3.1: minimal config — 1 active node + 9 standby + switch, no
        // drives — consumes ≈65 W.
        let minimal = p.node_idle_w + 9.0 * p.node_standby_w + p.switch_w;
        assert!((60.0..70.0).contains(&minimal), "minimal {minimal}");
        // §3.1: "a more realistic minimal configuration requires ~70–75 W"
        // — the active node's drives add a handful of Watts.
        let realistic = minimal + p.hdd_w + 2.0 * p.ssd_w;
        assert!((69.0..76.0).contains(&realistic), "realistic {realistic}");
        // §3.1: all nodes at full utilization — 260 to 280 W "depending on
        // the number of disk drives installed"; the node+switch envelope
        // must land inside that band before drive power is added.
        let full = 10.0 * p.node_max_w + p.switch_w;
        assert!((258.0..282.0).contains(&full), "full {full}");
    }

    #[test]
    fn gigabit_transfer() {
        let n = NetworkSpec::default();
        // A 117 KB payload serializes in ~1 ms.
        let t = ByteSize::bytes(117_000).transfer_time(n.bandwidth);
        assert_eq!(t, SimDuration::from_millis(1));
    }
}
