//! Byte, power, and energy units.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

use crate::time::SimDuration;

/// A number of bytes (data sizes, transfer volumes, storage footprints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Construct from bytes.
    #[inline]
    pub const fn bytes(b: u64) -> Self {
        ByteSize(b)
    }

    /// Construct from binary kilobytes.
    #[inline]
    pub const fn kib(k: u64) -> Self {
        ByteSize(k * 1024)
    }

    /// Construct from binary megabytes.
    #[inline]
    pub const fn mib(m: u64) -> Self {
        ByteSize(m * 1024 * 1024)
    }

    /// Construct from binary gigabytes.
    #[inline]
    pub const fn gib(g: u64) -> Self {
        ByteSize(g * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Time to transfer this many bytes at `bytes_per_sec`.
    #[inline]
    pub fn transfer_time(self, bytes_per_sec: u64) -> SimDuration {
        if bytes_per_sec == 0 {
            return SimDuration::ZERO;
        }
        // µs = bytes * 1e6 / Bps, computed in u128 to avoid overflow.
        let us = (self.0 as u128 * 1_000_000) / bytes_per_sec as u128;
        SimDuration::from_micros(us as u64)
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    #[inline]
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KIB: u64 = 1024;
        const MIB: u64 = 1024 * KIB;
        const GIB: u64 = 1024 * MIB;
        if self.0 >= GIB {
            write!(f, "{:.2}GiB", self.0 as f64 / GIB as f64)
        } else if self.0 >= MIB {
            write!(f, "{:.2}MiB", self.0 as f64 / MIB as f64)
        } else if self.0 >= KIB {
            write!(f, "{:.2}KiB", self.0 as f64 / KIB as f64)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

/// Instantaneous electrical power.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Watts(pub f64);

impl Watts {
    /// Zero power.
    pub const ZERO: Watts = Watts(0.0);

    /// Energy consumed by drawing this power for `dur`.
    #[inline]
    pub fn over(self, dur: SimDuration) -> Joules {
        Joules(self.0 * dur.as_secs_f64())
    }
}

impl Add for Watts {
    type Output = Watts;
    #[inline]
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl AddAssign for Watts {
    #[inline]
    fn add_assign(&mut self, rhs: Watts) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}W", self.0)
    }
}

/// An amount of energy.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Joules(pub f64);

impl Joules {
    /// Zero energy.
    pub const ZERO: Joules = Joules(0.0);
}

impl Add for Joules {
    type Output = Joules;
    #[inline]
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl AddAssign for Joules {
    #[inline]
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}J", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_constructors() {
        assert_eq!(ByteSize::kib(2).as_u64(), 2048);
        assert_eq!(ByteSize::mib(32).as_u64(), 32 * 1024 * 1024);
        assert_eq!(ByteSize::gib(1).as_u64(), 1 << 30);
    }

    #[test]
    fn transfer_time_gigabit() {
        // 125 MB/s (Gigabit Ethernet): 125_000 bytes take 1 ms.
        let t = ByteSize::bytes(125_000).transfer_time(125_000_000);
        assert_eq!(t, SimDuration::from_millis(1));
        assert_eq!(ByteSize::bytes(10).transfer_time(0), SimDuration::ZERO);
    }

    #[test]
    fn display_scales() {
        assert_eq!(ByteSize::bytes(17).to_string(), "17B");
        assert_eq!(ByteSize::kib(1).to_string(), "1.00KiB");
        assert_eq!(ByteSize::mib(32).to_string(), "32.00MiB");
        assert_eq!(ByteSize::gib(2).to_string(), "2.00GiB");
    }

    #[test]
    fn energy_integration() {
        // 26 W for 10 s = 260 J.
        let e = Watts(26.0).over(SimDuration::from_secs(10));
        assert!((e.0 - 260.0).abs() < 1e-9);
    }

    #[test]
    fn power_sum() {
        let mut p = Watts(22.0);
        p += Watts(4.0);
        assert_eq!(p, Watts(26.0));
        assert_eq!((Watts(1.5) + Watts(2.5)).to_string(), "4.0W");
    }
}
