//! Cost vectors and their scalarization into [`Heat`]: the unified query
//! cost model behind cost-based heat.
//!
//! Arsov et al. (PAPERS.md) show that partition planning on optimizer
//! *cost estimates* beats planning on raw access frequency: a CPU-heavy
//! aggregation over a segment should weigh far more than a point read
//! that happens to touch the same segment once. WattDB-RS therefore
//! accounts every access as a [`CostVector`] — core CPU time, buffer-pool
//! page touches, and bytes over the interconnect — and a [`CostModel`]
//! scalarizes that vector into the dimensionless [`Heat`] unit the
//! planner already consumes. The vector is the common currency between
//! the query crate's `CostTrace` (whole-operator demands) and the core
//! executor's per-operation accounting, so both layers feed one model.
//!
//! With no cost model configured, heat falls back to the original flat
//! per-access weights (see `HeatConfig`), byte-for-byte identical to the
//! pre-cost behaviour.

use std::fmt;
use std::ops::{Add, AddAssign};

use crate::heat::Heat;
use crate::time::SimDuration;

/// The hardware demand of one access or one operator, in physical units.
/// Dimensions follow the query engine's `CostTrace`: compute, buffer-pool
/// page traffic, and interconnect bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostVector {
    /// Core CPU time consumed.
    pub cpu: SimDuration,
    /// Pages touched through the buffer pool (hits and misses alike —
    /// the page traffic the access generates, not its residency luck).
    pub pages: u64,
    /// Bytes shipped over the interconnect on the access's behalf
    /// (remote page fetches, record shipping).
    pub net_bytes: u64,
}

impl CostVector {
    /// No demand at all.
    pub const ZERO: CostVector = CostVector {
        cpu: SimDuration::ZERO,
        pages: 0,
        net_bytes: 0,
    };

    /// A pure-CPU demand.
    #[inline]
    pub fn cpu(d: SimDuration) -> CostVector {
        CostVector {
            cpu: d,
            ..CostVector::ZERO
        }
    }

    /// True when nothing was demanded.
    #[inline]
    pub fn is_zero(&self) -> bool {
        *self == CostVector::ZERO
    }
}

impl Add for CostVector {
    type Output = CostVector;
    #[inline]
    fn add(self, rhs: CostVector) -> CostVector {
        CostVector {
            cpu: self.cpu + rhs.cpu,
            pages: self.pages + rhs.pages,
            net_bytes: self.net_bytes + rhs.net_bytes,
        }
    }
}

impl AddAssign for CostVector {
    #[inline]
    fn add_assign(&mut self, rhs: CostVector) {
        *self = *self + rhs;
    }
}

impl fmt::Display for CostVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}µs/{}pg/{}B",
            self.cpu.as_micros(),
            self.pages,
            self.net_bytes
        )
    }
}

/// Scalarization weights turning a [`CostVector`] into [`Heat`]:
/// `heat = cpu_µs · cpu_weight + pages · page_weight + bytes · net_byte_weight`.
///
/// The defaults are calibrated against the legacy flat access weights so
/// that cost-based heat lands in the same magnitude band the elasticity
/// thresholds (e.g. `skew_min_heat`) were tuned for: a default-cost point
/// read scalarizes to ≈ the old `read_weight` (1.0), an update to ≈ the
/// old `write_weight` (2.0), and one remote page fetch (8 KiB + envelope)
/// to ≈ the old `remote_weight` (1.0). What changes is everything the
/// flat weights could not see: a 2 000-record scan with an aggregation is
/// now worth hundreds of heat units instead of the single access count it
/// used to be.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Heat per core-microsecond of CPU.
    pub cpu_weight: f64,
    /// Heat per page touched through the buffer pool.
    pub page_weight: f64,
    /// Heat per byte shipped over the interconnect.
    pub net_byte_weight: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            // A default-cost point read burns ~12 core-µs (index descent,
            // latches, record read, buffer bookkeeping): 12 × 1/12 ≈ 1.0.
            cpu_weight: 1.0 / 12.0,
            page_weight: 0.05,
            // One remote page fetch ships PAGE_SIZE + envelope ≈ 8 KiB.
            net_byte_weight: 1.0 / 8192.0,
        }
    }
}

impl CostModel {
    /// Scalarize a cost vector into heat.
    #[inline]
    pub fn heat_of(&self, v: CostVector) -> Heat {
        Heat(
            v.cpu.as_micros() as f64 * self.cpu_weight
                + v.pages as f64 * self.page_weight
                + v.net_bytes as f64 * self.net_byte_weight,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectors_accumulate_componentwise() {
        let mut v = CostVector::ZERO;
        assert!(v.is_zero());
        v += CostVector {
            cpu: SimDuration::from_micros(10),
            pages: 2,
            net_bytes: 100,
        };
        v += CostVector::cpu(SimDuration::from_micros(5));
        assert_eq!(v.cpu, SimDuration::from_micros(15));
        assert_eq!((v.pages, v.net_bytes), (2, 100));
        assert!(!v.is_zero());
        assert_eq!(v.to_string(), "15µs/2pg/100B");
    }

    #[test]
    fn scalarization_is_linear() {
        let m = CostModel {
            cpu_weight: 0.5,
            page_weight: 2.0,
            net_byte_weight: 0.001,
        };
        let v = CostVector {
            cpu: SimDuration::from_micros(10),
            pages: 3,
            net_bytes: 1000,
        };
        let h = m.heat_of(v).value();
        assert!((h - (5.0 + 6.0 + 1.0)).abs() < 1e-9, "{h}");
        let double = m.heat_of(v + v).value();
        assert!((double - 2.0 * h).abs() < 1e-9);
        assert_eq!(m.heat_of(CostVector::ZERO).value(), 0.0);
    }

    #[test]
    fn defaults_calibrate_to_the_legacy_flat_weights() {
        let m = CostModel::default();
        // A point read's CPU (≈12 µs on the default CostParams) lands near
        // the legacy read_weight of 1.0.
        let read = m.heat_of(CostVector::cpu(SimDuration::from_micros(12)));
        assert!((read.value() - 1.0).abs() < 0.05, "{read}");
        // An update (≈22–24 µs) lands near the legacy write_weight of 2.0.
        let write = m.heat_of(CostVector::cpu(SimDuration::from_micros(24)));
        assert!((write.value() - 2.0).abs() < 0.1, "{write}");
        // One remote page fetch lands near the legacy remote_weight of 1.0.
        let remote = m.heat_of(CostVector {
            cpu: SimDuration::ZERO,
            pages: 0,
            net_bytes: 8192 + 64,
        });
        assert!((remote.value() - 1.0).abs() < 0.05, "{remote}");
    }
}
