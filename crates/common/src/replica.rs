//! Replication configuration: how many follower copies each segment
//! keeps, and when followers may serve reads.
//!
//! The paper's cluster keeps one copy of every segment; replication adds
//! N log-shipped follower copies per segment so a node loss is survivable
//! (the most-caught-up follower promotes to leader) and a read hotspot
//! can *fan out* across its replicas instead of merely moving. The
//! replica map itself lives in `wattdb_replica`; this is the policy
//! surface the cluster builder exposes.

/// Replication knobs.
///
/// Writes always go to the segment's leader (the owning node). Reads may
/// be served by a **caught-up** follower: one whose acknowledged shipped
/// LSN has reached the segment's last write, so the read observes every
/// committed write to that segment. A transaction that has written
/// anything reads from leaders only for the rest of its life
/// (read-your-writes), regardless of follower catch-up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaConfig {
    /// Follower replicas per segment. Zero disables replication entirely
    /// (the paper's single-copy behaviour, and the default).
    pub factor: usize,
    /// Allow caught-up followers to serve reads. With `false`, followers
    /// exist purely for durability/failover and all reads stay on the
    /// leader.
    pub read_routing: bool,
    /// Per-segment heat floor for read fan-out: only segments at or above
    /// this heat spread their reads across replicas; colder segments read
    /// from the leader, preserving its buffer locality. Zero (the
    /// default) fans out every eligible read.
    pub read_heat_min: f64,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        Self {
            factor: 0,
            read_routing: true,
            read_heat_min: 0.0,
        }
    }
}

impl ReplicaConfig {
    /// True when replication is on at all.
    pub fn enabled(&self) -> bool {
        self.factor > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_single_copy() {
        let cfg = ReplicaConfig::default();
        assert_eq!(cfg.factor, 0);
        assert!(!cfg.enabled());
        assert!(cfg.read_routing);
        assert_eq!(cfg.read_heat_min, 0.0);
        assert!(ReplicaConfig { factor: 2, ..cfg }.enabled());
    }
}
