//! Strongly-typed identifiers used across the cluster.
//!
//! All identifiers are small `Copy` newtypes so they can be used as map keys
//! and passed by value without thought. Display impls render the short forms
//! used in logs and experiment output (`n3`, `seg17`, `txn42`, ...).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        impl $name {
            /// Raw numeric value of the identifier.
            #[inline]
            pub fn raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }
    };
}

id_type!(
    /// A cluster node. Node 0 is always the master/coordinator.
    NodeId, u16, "n"
);
id_type!(
    /// A logical DB table (metadata lives on the master).
    TableId, u32, "tbl"
);
id_type!(
    /// A horizontal partition of a table, owned by exactly one node.
    PartitionId, u64, "part"
);
id_type!(
    /// A segment: the physical unit of storage and of data movement
    /// (4096 pages = 32 MB in the paper's configuration).
    SegmentId, u64, "seg"
);
id_type!(
    /// A transaction.
    TxnId, u64, "txn"
);
id_type!(
    /// A log sequence number within one node's WAL.
    Lsn, u64, "lsn"
);
id_type!(
    /// A query admitted to the cluster.
    QueryId, u64, "q"
);
id_type!(
    /// An OLTP client driving the workload.
    ClientId, u32, "cl"
);

impl NodeId {
    /// The master node coordinates the cluster and is the client endpoint.
    pub const MASTER: NodeId = NodeId(0);

    /// True if this node is the cluster master.
    #[inline]
    pub fn is_master(self) -> bool {
        self == Self::MASTER
    }
}

impl Lsn {
    /// LSN ordering starts at 1; 0 means "no LSN" (e.g. a clean page).
    pub const ZERO: Lsn = Lsn(0);

    /// Next LSN in sequence.
    #[inline]
    pub fn next(self) -> Lsn {
        Lsn(self.0 + 1)
    }
}

impl TxnId {
    /// Sentinel for "no transaction" (e.g. an unversioned record slot).
    pub const NONE: TxnId = TxnId(0);
}

/// A physical disk drive attached to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DiskId {
    /// Owning node.
    pub node: NodeId,
    /// Index of the drive within the node (0 = HDD, 1.. = SSDs by default).
    pub index: u8,
}

impl DiskId {
    /// Construct a disk id.
    pub fn new(node: NodeId, index: u8) -> Self {
        Self { node, index }
    }
}

impl fmt::Display for DiskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}d{}", self.node, self.index)
    }
}

/// A page address: segment plus page number within the segment.
///
/// Logical page addresses stay stable while segments move between disks and
/// nodes; the storage layer maintains the physical mapping (cf. §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId {
    /// Segment containing the page.
    pub segment: SegmentId,
    /// Page number within the segment (0-based).
    pub page_no: u32,
}

impl PageId {
    /// Construct a page id.
    pub fn new(segment: SegmentId, page_no: u32) -> Self {
        Self { segment, page_no }
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}p{}", self.segment, self.page_no)
    }
}

/// A record address: page plus slot number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId {
    /// Page holding the record.
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

impl RecordId {
    /// Construct a record id.
    pub fn new(page: PageId, slot: u16) -> Self {
        Self { page, slot }
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s{}", self.page, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(SegmentId(17).to_string(), "seg17");
        assert_eq!(TxnId(42).to_string(), "txn42");
        let pid = PageId::new(SegmentId(2), 9);
        assert_eq!(pid.to_string(), "seg2p9");
        assert_eq!(RecordId::new(pid, 4).to_string(), "seg2p9s4");
        assert_eq!(DiskId::new(NodeId(1), 2).to_string(), "n1d2");
    }

    #[test]
    fn master_node() {
        assert!(NodeId::MASTER.is_master());
        assert!(!NodeId(1).is_master());
    }

    #[test]
    fn lsn_sequence() {
        assert_eq!(Lsn::ZERO.next(), Lsn(1));
        assert_eq!(Lsn(7).next(), Lsn(8));
    }

    #[test]
    fn ordering_and_hash_usable() {
        use std::collections::BTreeSet;
        let mut s = BTreeSet::new();
        s.insert(PageId::new(SegmentId(1), 2));
        s.insert(PageId::new(SegmentId(1), 1));
        s.insert(PageId::new(SegmentId(0), 9));
        let v: Vec<_> = s.into_iter().collect();
        assert_eq!(
            v,
            vec![
                PageId::new(SegmentId(0), 9),
                PageId::new(SegmentId(1), 1),
                PageId::new(SegmentId(1), 2)
            ]
        );
    }
}
