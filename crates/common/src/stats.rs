//! Online statistics and time-series bucketing for experiment reporting.

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// Streaming mean/min/max/count over f64 samples (Welford for variance).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty statistics.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0 when fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum sample; 0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum sample; 0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A latency histogram with logarithmically spaced buckets (µs domain).
///
/// Buckets: [0,1), [1,2), [2,4), ... doubling up to ~2^40 µs, which covers
/// sub-µs to ~12 days. Percentiles are estimated at bucket upper bounds —
/// adequate for the comparative reporting this repo does.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum_us: u64,
}

const HIST_BUCKETS: usize = 42;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum_us: 0,
        }
    }

    fn bucket_of(us: u64) -> usize {
        if us == 0 {
            0
        } else {
            ((64 - us.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Record a duration sample.
    pub fn record(&mut self, d: SimDuration) {
        let us = d.as_micros();
        self.buckets[Self::bucket_of(us)] += 1;
        self.count += 1;
        self.sum_us += us;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean duration.
    pub fn mean(&self) -> SimDuration {
        match self.sum_us.checked_div(self.count) {
            Some(us) => SimDuration::from_micros(us),
            None => SimDuration::ZERO,
        }
    }

    /// Estimated percentile (`p` in \[0,100\]) as a duration.
    pub fn percentile(&self, p: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Upper bound of bucket i: 2^i - 1 ≈ 2^i.
                let ub = if i == 0 { 0 } else { 1u64 << i };
                return SimDuration::from_micros(ub);
            }
        }
        SimDuration::from_micros(1 << (HIST_BUCKETS - 1))
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
    }
}

/// Exponentially weighted moving average, used by the utilization monitors.
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// `alpha` in (0,1]: weight of the newest observation.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Self { alpha, value: None }
    }

    /// Feed an observation, returning the updated average.
    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.value = Some(v);
        v
    }

    /// Current average (0 before any observation).
    pub fn value(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }
}

/// A simple monotonically increasing counter with delta reads.
#[derive(Debug, Clone, Copy, Default)]
pub struct Counter {
    total: u64,
    last_read: u64,
}

impl Counter {
    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.total += n;
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.total += 1;
    }

    /// Total since creation.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Amount accumulated since the previous `take_delta` call.
    pub fn take_delta(&mut self) -> u64 {
        let d = self.total - self.last_read;
        self.last_read = self.total;
        d
    }
}

/// Fixed-width time buckets accumulating per-interval experiment metrics
/// (queries completed, response-time sums, energy) for time-series plots
/// like Fig. 6 of the paper.
#[derive(Debug, Clone)]
pub struct TimeBuckets {
    width: SimDuration,
    origin: SimTime,
    /// (count, sum) per bucket, indexed by bucket number.
    buckets: Vec<(u64, f64)>,
}

impl TimeBuckets {
    /// Buckets of `width` starting at `origin`.
    pub fn new(origin: SimTime, width: SimDuration) -> Self {
        assert!(width.as_micros() > 0, "bucket width must be positive");
        Self {
            width,
            origin,
            buckets: Vec::new(),
        }
    }

    fn index_of(&self, t: SimTime) -> usize {
        (t.since(self.origin).as_micros() / self.width.as_micros()) as usize
    }

    /// Record a sample value at time `t`.
    pub fn record(&mut self, t: SimTime, value: f64) {
        let i = self.index_of(t);
        if i >= self.buckets.len() {
            self.buckets.resize(i + 1, (0, 0.0));
        }
        let b = &mut self.buckets[i];
        b.0 += 1;
        b.1 += value;
    }

    /// Iterate `(bucket_start_time, count, sum)` over all buckets.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, u64, f64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, &(c, s))| (self.origin + self.width * i as u64, c, s))
    }

    /// Count in the bucket containing `t` (0 if none).
    pub fn count_at(&self, t: SimTime) -> u64 {
        self.buckets.get(self.index_of(t)).map_or(0, |b| b.0)
    }

    /// Mean value in the bucket containing `t` (0 if empty).
    pub fn mean_at(&self, t: SimTime) -> f64 {
        match self.buckets.get(self.index_of(t)) {
            Some(&(c, s)) if c > 0 => s / c as f64,
            _ => 0.0,
        }
    }

    /// Bucket width.
    pub fn width(&self) -> SimDuration {
        self.width
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.count(),
            self.mean(),
            self.stddev(),
            self.min(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-9);
        assert!((s.variance() - 4.0).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_merge_matches_single_stream() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.7 - 3.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-6);
    }

    #[test]
    fn histogram_percentiles_ordered() {
        let mut h = Histogram::new();
        for us in [10u64, 100, 1000, 10_000, 100_000] {
            for _ in 0..20 {
                h.record(SimDuration::from_micros(us));
            }
        }
        assert_eq!(h.count(), 100);
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p99);
        assert!(p99 >= SimDuration::from_micros(100_000));
        assert!(h.mean() > SimDuration::ZERO);
    }

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), 0.0);
        e.update(10.0);
        assert_eq!(e.value(), 10.0);
        for _ in 0..32 {
            e.update(20.0);
        }
        assert!((e.value() - 20.0).abs() < 1e-3);
    }

    #[test]
    fn counter_delta() {
        let mut c = Counter::default();
        c.add(5);
        c.inc();
        assert_eq!(c.total(), 6);
        assert_eq!(c.take_delta(), 6);
        assert_eq!(c.take_delta(), 0);
        c.inc();
        assert_eq!(c.take_delta(), 1);
    }

    #[test]
    fn time_buckets() {
        let mut tb = TimeBuckets::new(SimTime::ZERO, SimDuration::from_secs(10));
        tb.record(SimTime::from_secs(1), 100.0);
        tb.record(SimTime::from_secs(9), 200.0);
        tb.record(SimTime::from_secs(25), 50.0);
        assert_eq!(tb.count_at(SimTime::from_secs(5)), 2);
        assert!((tb.mean_at(SimTime::from_secs(5)) - 150.0).abs() < 1e-9);
        assert_eq!(tb.count_at(SimTime::from_secs(15)), 0);
        assert_eq!(tb.count_at(SimTime::from_secs(25)), 1);
        let rows: Vec<_> = tb.iter().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].0, SimTime::ZERO);
        assert_eq!(rows[2].0, SimTime::from_secs(20));
    }
}
