//! Common foundation types for WattDB-RS.
//!
//! This crate holds the vocabulary shared by every subsystem of the WattDB
//! reproduction: strongly-typed identifiers, the virtual-time types used by
//! the discrete-event simulator, primary-key and key-range types, byte/power
//! units, online statistics, deterministic randomness, and the calibrated
//! hardware/cost configuration taken from §3.1 of the paper.
//!
//! Nothing in this crate performs I/O or depends on the simulator; it is the
//! bottom of the dependency stack.

pub mod config;
pub mod cost;
pub mod error;
pub mod heat;
pub mod ids;
pub mod key;
pub mod replica;
pub mod rng;
pub mod stats;
pub mod time;
pub mod units;

pub use config::{CostParams, DiskSpec, HardwareSpec, NetworkSpec, PowerSpec};
pub use cost::{CostModel, CostVector};
pub use error::{Error, Result};
pub use heat::{DriftConfig, Heat, HeatConfig, HeatVelocity, HelperPolicyConfig};
pub use ids::{
    ClientId, DiskId, Lsn, NodeId, PageId, PartitionId, QueryId, RecordId, SegmentId, TableId,
    TxnId,
};
pub use key::{Key, KeyRange};
pub use replica::ReplicaConfig;
pub use rng::DetRng;
pub use stats::{Counter, Ewma, Histogram, OnlineStats, TimeBuckets};
pub use time::{SimDuration, SimTime};
pub use units::{ByteSize, Joules, Watts};
