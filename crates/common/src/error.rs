//! Error type shared across WattDB subsystems.

use std::fmt;

use crate::ids::{NodeId, PageId, PartitionId, RecordId, SegmentId, TxnId};
use crate::key::Key;

/// Result alias using [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the WattDB engine.
///
/// Kept as a single enum (rather than per-crate errors) because the layers
/// are tightly co-designed and callers almost always handle them uniformly:
/// abort the transaction or fail the experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A page slot did not contain a record.
    RecordNotFound(RecordId),
    /// A key lookup found nothing.
    KeyNotFound(Key),
    /// Insert of a key that already exists in a unique index.
    DuplicateKey(Key),
    /// Page has insufficient free space for the requested insert.
    PageFull(PageId),
    /// A segment id was not known to the storage layer.
    UnknownSegment(SegmentId),
    /// A partition id was not known to the catalog.
    UnknownPartition(PartitionId),
    /// A node id was not part of the cluster or is powered off.
    NodeUnavailable(NodeId),
    /// Transaction was aborted (deadlock victim, write-write conflict, ...).
    TxnAborted {
        /// The aborted transaction.
        txn: TxnId,
        /// Human-readable cause.
        reason: AbortReason,
    },
    /// The buffer pool could not evict a frame (all pinned).
    BufferExhausted,
    /// A disk ran out of capacity.
    DiskFull(NodeId),
    /// Operation is invalid in the current state (protocol misuse).
    InvalidState(&'static str),
    /// Corrupted on-page data was encountered.
    Corruption(&'static str),
}

/// Why a transaction was aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// Chosen as a deadlock victim by the lock manager.
    Deadlock,
    /// First-updater-wins conflict under MVCC.
    WriteConflict,
    /// Lock wait exceeded the configured timeout.
    LockTimeout,
    /// Explicit user/system abort.
    Requested,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AbortReason::Deadlock => "deadlock victim",
            AbortReason::WriteConflict => "write-write conflict",
            AbortReason::LockTimeout => "lock timeout",
            AbortReason::Requested => "requested",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::RecordNotFound(rid) => write!(f, "record not found at {rid}"),
            Error::KeyNotFound(k) => write!(f, "key {k} not found"),
            Error::DuplicateKey(k) => write!(f, "duplicate key {k}"),
            Error::PageFull(p) => write!(f, "page {p} is full"),
            Error::UnknownSegment(s) => write!(f, "unknown segment {s}"),
            Error::UnknownPartition(p) => write!(f, "unknown partition {p}"),
            Error::NodeUnavailable(n) => write!(f, "node {n} unavailable"),
            Error::TxnAborted { txn, reason } => write!(f, "{txn} aborted: {reason}"),
            Error::BufferExhausted => write!(f, "buffer pool exhausted (all frames pinned)"),
            Error::DiskFull(n) => write!(f, "disk full on node {n}"),
            Error::InvalidState(msg) => write!(f, "invalid state: {msg}"),
            Error::Corruption(msg) => write!(f, "data corruption: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// True for errors that abort only the current transaction and can be
    /// retried by the client (the standard OLTP retry loop).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Error::TxnAborted {
                reason: AbortReason::Deadlock
                    | AbortReason::WriteConflict
                    | AbortReason::LockTimeout,
                ..
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = Error::TxnAborted {
            txn: TxnId(7),
            reason: AbortReason::Deadlock,
        };
        assert_eq!(e.to_string(), "txn7 aborted: deadlock victim");
        assert_eq!(Error::KeyNotFound(Key(9)).to_string(), "key k9 not found");
    }

    #[test]
    fn retryability() {
        let dead = Error::TxnAborted {
            txn: TxnId(1),
            reason: AbortReason::Deadlock,
        };
        let req = Error::TxnAborted {
            txn: TxnId(1),
            reason: AbortReason::Requested,
        };
        assert!(dead.is_retryable());
        assert!(!req.is_retryable());
        assert!(!Error::BufferExhausted.is_retryable());
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(Error::BufferExhausted);
        assert!(e.to_string().contains("buffer pool"));
    }
}
