//! Heat: the access-frequency unit behind workload-aware placement.
//!
//! The paper's master "checks the incoming performance data [...] and
//! decides where to distribute data" (§3.4). Raw access counts are a poor
//! distribution signal — a segment hammered an hour ago is not hot *now* —
//! so WattDB-RS tracks per-segment **heat**: a weighted access count that
//! decays exponentially in *simulated* time. Reads, writes, and remote page
//! fetches contribute with configurable weights; the half-life controls how
//! fast history fades. The heat planner (`wattdb_planner`) consumes these
//! values to balance load while minimizing bytes shipped.

use std::fmt;
use std::ops::{Add, AddAssign};

use crate::time::SimDuration;

/// A quantity of access heat: an exponentially decayed, weighted access
/// count. Dimensionless; only ratios and orderings between heats matter.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Heat(pub f64);

impl Heat {
    /// No heat at all.
    pub const ZERO: Heat = Heat(0.0);

    /// Raw value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// This heat after `elapsed` of exponential decay with the given
    /// half-life: `h · 2^(−elapsed/half_life)`. A zero half-life disables
    /// decay (heat becomes a plain weighted counter).
    #[inline]
    pub fn decayed(self, elapsed: SimDuration, half_life: SimDuration) -> Heat {
        if half_life.as_micros() == 0 || elapsed.as_micros() == 0 {
            return self;
        }
        let halves = elapsed.as_micros() as f64 / half_life.as_micros() as f64;
        Heat(self.0 * (-halves).exp2())
    }
}

impl Add for Heat {
    type Output = Heat;
    #[inline]
    fn add(self, rhs: Heat) -> Heat {
        Heat(self.0 + rhs.0)
    }
}

impl AddAssign for Heat {
    #[inline]
    fn add_assign(&mut self, rhs: Heat) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for Heat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}", self.0)
    }
}

/// Configuration of the heat tracker: decay horizon and per-access-kind
/// weights.
#[derive(Debug, Clone, Copy)]
pub struct HeatConfig {
    /// Half-life of the exponential decay, in simulated time. Accesses
    /// older than a few half-lives stop influencing placement. Zero
    /// disables decay.
    pub half_life: SimDuration,
    /// Heat added by one local read.
    pub read_weight: f64,
    /// Heat added by one write (update/insert/delete); writes weigh more
    /// because they dirty pages and append log records.
    pub write_weight: f64,
    /// Extra heat added when serving the access required a remote page
    /// fetch (wire plus remote disk — the cost the planner most wants to
    /// eliminate by moving the segment to where it is used).
    pub remote_weight: f64,
}

impl Default for HeatConfig {
    fn default() -> Self {
        Self {
            half_life: SimDuration::from_secs(30),
            read_weight: 1.0,
            write_weight: 2.0,
            remote_weight: 1.0,
        }
    }
}

/// A rate of heat change: heat units per simulated second.
///
/// Positive velocity means the segment is getting hotter (the workload is
/// arriving — e.g. the advancing front of an insert-heavy key range);
/// negative means it is cooling (the workload has moved past it). Linear
/// extrapolation `heat + velocity · horizon` predicts where heat is
/// *going*, which is what a planner facing a moving hotspot needs.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct HeatVelocity(pub f64);

impl HeatVelocity {
    /// No movement at all.
    pub const ZERO: HeatVelocity = HeatVelocity(0.0);

    /// Raw value in heat units per second.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// The heat this velocity adds (or removes) over `horizon`.
    #[inline]
    pub fn over(self, horizon: SimDuration) -> Heat {
        Heat(self.0 * horizon.as_secs_f64())
    }
}

impl fmt::Display for HeatVelocity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.3}/s", self.0)
    }
}

/// Configuration of the heat-drift tracker: how fast velocity estimates
/// adapt, and how far ahead the planner projects.
#[derive(Debug, Clone, Copy)]
pub struct DriftConfig {
    /// Half-life of the velocity EWMA, in simulated time: how much history
    /// a velocity estimate remembers. Shorter adapts faster to direction
    /// changes but is noisier; zero makes every observation replace the
    /// estimate outright.
    pub velocity_half_life: SimDuration,
    /// Default projection horizon: the planner plans against
    /// `heat + velocity × horizon` instead of raw heat. Zero disables
    /// projection entirely (plans use historical heat, the pre-drift
    /// behaviour).
    pub horizon: SimDuration,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            velocity_half_life: SimDuration::from_secs(15),
            horizon: SimDuration::from_secs(10),
        }
    }
}

/// Configuration of the helper-escalation response (Fig. 8 helper nodes
/// as an elasticity decision).
///
/// Shipping segments answers *stationary* skew: the bytes buy a balance
/// that lasts. When the skew is **transient** — the skew trigger keeps
/// re-firing the moment its cooldown expires because the last rebalance
/// did not make the skew subside — moving data chases a hotspot that will
/// have moved on by the time the copy lands. The cheaper response
/// (DynaHash's principle, and the paper's Fig. 8) is to *attach a helper*
/// to the hot source: the helper takes the source's log shipping and
/// extends its buffer pool, relieving its disks and its remote traffic
/// without shipping a single segment. Helpers detach again once the skew
/// subsides.
#[derive(Debug, Clone, Copy)]
pub struct HelperPolicyConfig {
    /// Consecutive skew-trigger fires *without an intervening subsidence*
    /// (skew never fell back below the rearm band between them) after
    /// which the policy escalates from `Rebalance` to `AttachHelpers`.
    /// `1` attaches helpers on the first fire (a helpers-first response
    /// for workloads known to be transient); `0` disables helper
    /// escalation entirely (the pre-helper behaviour: every skew fire
    /// rebalances).
    pub escalation_fires: u32,
    /// Most helpers attached at once; also caps a single helper plan.
    pub max_helpers: usize,
    /// Net-heat floor: a source whose net/remote-heavy heat component sits
    /// below this is not worth a helper (its pain is not remote traffic).
    pub min_net_heat: f64,
}

impl Default for HelperPolicyConfig {
    fn default() -> Self {
        Self {
            // A rebalance gets one chance; if the skew re-fires without
            // ever subsiding, the second fire attaches helpers instead.
            escalation_fires: 2,
            max_helpers: 2,
            min_net_heat: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_halves_per_half_life() {
        let h = Heat(8.0);
        let hl = SimDuration::from_secs(10);
        let d = h.decayed(SimDuration::from_secs(10), hl);
        assert!((d.value() - 4.0).abs() < 1e-9, "{d}");
        let d3 = h.decayed(SimDuration::from_secs(30), hl);
        assert!((d3.value() - 1.0).abs() < 1e-9, "{d3}");
    }

    #[test]
    fn zero_half_life_disables_decay() {
        let h = Heat(5.0);
        let d = h.decayed(SimDuration::from_secs(1000), SimDuration::ZERO);
        assert_eq!(d.value(), 5.0);
    }

    #[test]
    fn heat_accumulates() {
        let mut h = Heat::ZERO;
        h += Heat(1.5);
        let sum = h + Heat(0.5);
        assert_eq!(sum.value(), 2.0);
        assert_eq!(sum.to_string(), "2.00");
    }

    #[test]
    fn default_weights_rank_writes_over_reads() {
        let cfg = HeatConfig::default();
        assert!(cfg.write_weight > cfg.read_weight);
        assert!(cfg.half_life > SimDuration::ZERO);
    }

    #[test]
    fn velocity_extrapolates_over_a_horizon() {
        let v = HeatVelocity(0.5);
        let gained = v.over(SimDuration::from_secs(8));
        assert!((gained.value() - 4.0).abs() < 1e-9);
        let cooling = HeatVelocity(-2.0).over(SimDuration::from_secs(3));
        assert!((cooling.value() + 6.0).abs() < 1e-9);
        assert_eq!(
            HeatVelocity::ZERO.over(SimDuration::from_secs(100)).value(),
            0.0
        );
        assert_eq!(v.to_string(), "+0.500/s");
    }
}
