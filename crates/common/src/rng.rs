//! Deterministic randomness.
//!
//! Every stochastic element of the simulation (workload mix, think times,
//! key selection) draws from a [`DetRng`] derived from a single experiment
//! seed, so repeated runs produce identical event sequences.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic PRNG with convenience helpers for workload generation.
#[derive(Debug, Clone)]
pub struct DetRng {
    seed: u64,
    inner: SmallRng,
}

impl DetRng {
    /// Seed the generator. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream (e.g. one per client). Children
    /// depend on both the parent's seed and the salt, decorrelated via
    /// splitmix-style mixing.
    pub fn derive(&self, salt: u64) -> DetRng {
        let mut z = self
            .seed
            .wrapping_mul(0xD6E8_FEB8_6659_FD93)
            .wrapping_add(salt)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        DetRng::new(z ^ (z >> 31))
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn uniform(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen::<f64>() < p
    }

    /// Pick an index according to integer weights. Panics on empty or
    /// all-zero weights.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0, "weights must sum to a positive value");
        let mut x = self.uniform(0, total - 1);
        for (i, &w) in weights.iter().enumerate() {
            let w = w as u64;
            if x < w {
                return i;
            }
            x -= w;
        }
        unreachable!("weighted draw out of range")
    }

    /// Exponentially distributed duration with the given mean (µs domain);
    /// used for Poisson-ish arrival/think-time processes.
    pub fn exp_micros(&mut self, mean_us: f64) -> u64 {
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        (-mean_us * u.ln()).round().max(0.0) as u64
    }

    /// TPC-C NURand(A, x, y): non-uniform random over `[x, y]`.
    pub fn nurand(&mut self, a: u64, x: u64, y: u64, c: u64) -> u64 {
        let r1 = self.uniform(0, a);
        let r2 = self.uniform(x, y);
        (((r1 | r2) + c) % (y - x + 1)) + x
    }

    /// Access the underlying rand generator for anything not covered above.
    pub fn raw(&mut self) -> &mut SmallRng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(0, 1_000_000), b.uniform(0, 1_000_000));
        }
    }

    #[test]
    fn derive_decorrelates() {
        let root = DetRng::new(7);
        let mut c1 = root.derive(1);
        let mut c2 = root.derive(2);
        let s1: Vec<u64> = (0..16).map(|_| c1.uniform(0, 1000)).collect();
        let s2: Vec<u64> = (0..16).map(|_| c2.uniform(0, 1000)).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn derive_depends_on_parent_seed() {
        let mut a = DetRng::new(1).derive(5);
        let mut b = DetRng::new(2).derive(5);
        let sa: Vec<u64> = (0..16).map(|_| a.uniform(0, 1000)).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.uniform(0, 1000)).collect();
        assert_ne!(sa, sb, "same salt under different parents must differ");
    }

    #[test]
    fn uniform_in_bounds() {
        let mut r = DetRng::new(1);
        for _ in 0..1000 {
            let v = r.uniform(10, 20);
            assert!((10..=20).contains(&v));
        }
    }

    #[test]
    fn weighted_respects_zero_weights() {
        let mut r = DetRng::new(3);
        for _ in 0..200 {
            let i = r.weighted(&[0, 5, 0, 5]);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    fn exp_mean_roughly_right() {
        let mut r = DetRng::new(9);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| r.exp_micros(1000.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!(
            (mean - 1000.0).abs() < 50.0,
            "mean {mean} too far from 1000"
        );
    }

    #[test]
    fn nurand_in_range() {
        let mut r = DetRng::new(11);
        for _ in 0..1000 {
            let v = r.nurand(255, 1, 3000, 123);
            assert!((1..=3000).contains(&v));
        }
    }
}
