//! Discrete-event simulation kernel for WattDB-RS.
//!
//! The paper's experiments run on a physical 10-node cluster; this crate is
//! the substitute substrate: a deterministic, single-threaded discrete-event
//! simulator. Simulated hardware components (CPU cores, disks, NICs) are
//! [`Resource`] servers with FIFO queues; everything that takes time in the
//! real system becomes a resource request plus a continuation closure.
//!
//! Determinism: the event queue orders by `(time, sequence)`, so equal-time
//! events fire in submission order, and all randomness elsewhere comes from
//! seeded generators. Two runs of the same experiment produce bit-identical
//! metric series.
//!
//! The engine's *state* (pages, B-trees, versions, locks) is real — see the
//! storage/index/txn crates; only *time* is virtual.

pub mod kernel;
pub mod probe;
pub mod profile;
pub mod resource;

pub use kernel::{EventFn, RepeatFn, Sim};
pub use probe::{Repeater, UtilizationProbe};
pub use profile::{CostCategory, CostProfile};
pub use resource::{Resource, ResourceHandle, ResourceStats};
