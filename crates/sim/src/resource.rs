//! Queueing resources: the simulated hardware components.
//!
//! A [`Resource`] models a server with `slots` parallel service stations and
//! a FIFO queue — CPU (slots = cores), a disk (slots = 1), a NIC direction
//! (slots = 1). Requests carry a service time and a completion continuation.
//! Contention (queueing delay) emerges naturally when concurrent requests
//! exceed the slot count, which is exactly the effect the paper measures
//! when rebalancing competes with queries for disk bandwidth (§5.2, Fig. 7).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use wattdb_common::{SimDuration, SimTime};

use crate::kernel::{EventFn, Sim};

/// Shared handle to a resource. Resources are owned jointly by everything
/// that submits work to them; the DES is single-threaded so `RefCell` is
/// sufficient.
pub type ResourceHandle = Rc<RefCell<Resource>>;

struct Pending {
    enqueued: SimTime,
    service: SimDuration,
    done: EventFn,
}

/// Aggregate counters for a resource, for utilization and wait accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResourceStats {
    /// Requests completed.
    pub completed: u64,
    /// Sum of service times of completed requests (µs).
    pub service_us: u64,
    /// Sum of queue-wait times of completed requests (µs).
    pub wait_us: u64,
    /// Longest queue observed.
    pub max_queue: usize,
}

/// A multi-slot FIFO queueing server.
pub struct Resource {
    name: String,
    slots: u32,
    busy: u32,
    queue: VecDeque<Pending>,
    /// Integral of busy slots over time, in slot-µs; used for utilization.
    busy_integral_us: u64,
    last_change: SimTime,
    stats: ResourceStats,
}

impl Resource {
    /// Create a shared resource with `slots` parallel service stations.
    pub fn new(name: impl Into<String>, slots: u32) -> ResourceHandle {
        assert!(slots > 0, "a resource needs at least one slot");
        Rc::new(RefCell::new(Resource {
            name: name.into(),
            slots,
            busy: 0,
            queue: VecDeque::new(),
            busy_integral_us: 0,
            last_change: SimTime::ZERO,
            stats: ResourceStats::default(),
        }))
    }

    /// Resource name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of parallel service stations.
    pub fn slots(&self) -> u32 {
        self.slots
    }

    /// Requests currently being served.
    pub fn busy(&self) -> u32 {
        self.busy
    }

    /// Requests waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Counters snapshot.
    pub fn stats(&self) -> ResourceStats {
        self.stats
    }

    fn advance_integral(&mut self, now: SimTime) {
        let dt = now.since(self.last_change).as_micros();
        self.busy_integral_us += dt * self.busy as u64;
        self.last_change = now;
    }

    /// Monotonic busy integral in slot-µs up to `now`. Utilization over a
    /// window is `Δintegral / (Δt · slots)`; see [`UtilizationProbe`].
    ///
    /// [`UtilizationProbe`]: crate::probe::UtilizationProbe
    pub fn busy_integral_us(&mut self, now: SimTime) -> u64 {
        self.advance_integral(now);
        self.busy_integral_us
    }

    /// Submit a request: serve for `service` once a slot frees up, then run
    /// `done`. Completion order among queued requests is FIFO.
    pub fn submit(this: &ResourceHandle, sim: &mut Sim, service: SimDuration, done: EventFn) {
        let mut r = this.borrow_mut();
        r.advance_integral(sim.now());
        if r.busy < r.slots {
            r.busy += 1;
            drop(r);
            Self::schedule_completion(this, sim, service, SimDuration::ZERO, done);
        } else {
            r.queue.push_back(Pending {
                enqueued: sim.now(),
                service,
                done,
            });
            let qlen = r.queue.len();
            r.stats.max_queue = r.stats.max_queue.max(qlen);
        }
    }

    fn schedule_completion(
        this: &ResourceHandle,
        sim: &mut Sim,
        service: SimDuration,
        waited: SimDuration,
        done: EventFn,
    ) {
        let handle = this.clone();
        sim.after(service, move |sim| {
            let next = {
                let mut r = handle.borrow_mut();
                r.advance_integral(sim.now());
                r.stats.completed += 1;
                r.stats.service_us += service.as_micros();
                r.stats.wait_us += waited.as_micros();
                match r.queue.pop_front() {
                    Some(p) => Some((p.service, sim.now().since(p.enqueued), p.done)),
                    None => {
                        r.busy -= 1;
                        None
                    }
                }
            };
            if let Some((svc, waited, next_done)) = next {
                Self::schedule_completion(&handle, sim, svc, waited, next_done);
            }
            done(sim);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;
    use wattdb_common::SimTime;

    fn collect_completions(
        res: &ResourceHandle,
        sim: &mut Sim,
        services: &[u64],
    ) -> Rc<RefCell<Vec<(u32, SimTime)>>> {
        let log: Rc<RefCell<Vec<(u32, SimTime)>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &svc) in services.iter().enumerate() {
            let l = log.clone();
            Resource::submit(
                res,
                sim,
                SimDuration::from_micros(svc),
                Box::new(move |sim| l.borrow_mut().push((i as u32, sim.now()))),
            );
        }
        log
    }

    #[test]
    fn single_slot_serializes_fifo() {
        let mut sim = Sim::new();
        let res = Resource::new("disk", 1);
        let log = collect_completions(&res, &mut sim, &[10, 10, 10]);
        sim.run_to_completion();
        let v = log.borrow();
        assert_eq!(
            *v,
            vec![
                (0, SimTime::from_micros(10)),
                (1, SimTime::from_micros(20)),
                (2, SimTime::from_micros(30)),
            ]
        );
    }

    #[test]
    fn two_slots_run_in_parallel() {
        let mut sim = Sim::new();
        let res = Resource::new("cpu", 2);
        let log = collect_completions(&res, &mut sim, &[10, 10, 10]);
        sim.run_to_completion();
        let v = log.borrow();
        // First two run in parallel, third waits for a slot.
        assert_eq!(v[0], (0, SimTime::from_micros(10)));
        assert_eq!(v[1], (1, SimTime::from_micros(10)));
        assert_eq!(v[2], (2, SimTime::from_micros(20)));
    }

    #[test]
    fn wait_time_accounted() {
        let mut sim = Sim::new();
        let res = Resource::new("disk", 1);
        let _log = collect_completions(&res, &mut sim, &[100, 50]);
        sim.run_to_completion();
        let stats = res.borrow().stats();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.service_us, 150);
        // Second request waited the full 100 µs of the first.
        assert_eq!(stats.wait_us, 100);
        assert_eq!(stats.max_queue, 1);
    }

    #[test]
    fn busy_integral_tracks_utilization() {
        let mut sim = Sim::new();
        let res = Resource::new("disk", 1);
        let _log = collect_completions(&res, &mut sim, &[250]);
        sim.run_to_completion();
        // Busy 250 µs out of 250 µs: integral = 250 slot-µs.
        assert_eq!(res.borrow_mut().busy_integral_us(sim.now()), 250);
        // Advance idle time; integral unchanged.
        sim.run_until(SimTime::from_micros(1_000));
        assert_eq!(res.borrow_mut().busy_integral_us(sim.now()), 250);
    }

    #[test]
    fn multi_slot_integral_counts_slot_us() {
        let mut sim = Sim::new();
        let res = Resource::new("cpu", 2);
        let _log = collect_completions(&res, &mut sim, &[100, 100]);
        sim.run_to_completion();
        // Two slots busy for 100 µs each = 200 slot-µs.
        assert_eq!(res.borrow_mut().busy_integral_us(sim.now()), 200);
    }

    #[test]
    fn completions_interleave_with_submissions() {
        let mut sim = Sim::new();
        let res = Resource::new("disk", 1);
        let log: Rc<RefCell<Vec<SimTime>>> = Rc::new(RefCell::new(Vec::new()));
        // Submit one request; from its completion, submit another.
        let l2 = log.clone();
        let r2 = res.clone();
        Resource::submit(
            &res,
            &mut sim,
            SimDuration::from_micros(10),
            Box::new(move |sim| {
                let l3 = l2.clone();
                Resource::submit(
                    &r2,
                    sim,
                    SimDuration::from_micros(5),
                    Box::new(move |sim| l3.borrow_mut().push(sim.now())),
                );
            }),
        );
        sim.run_to_completion();
        assert_eq!(log.borrow()[0], SimTime::from_micros(15));
        assert_eq!(res.borrow().busy(), 0);
        assert_eq!(res.borrow().queue_len(), 0);
    }

    #[test]
    fn zero_service_requests_complete() {
        let mut sim = Sim::new();
        let res = Resource::new("noop", 1);
        let log = collect_completions(&res, &mut sim, &[0, 0]);
        sim.run_to_completion();
        assert_eq!(log.borrow().len(), 2);
    }
}
