//! Sampling helpers: windowed utilization probes and repeating events.
//!
//! WattDB nodes "send their monitoring data every few seconds to the master
//! node" (§3.4); [`UtilizationProbe`] computes the per-window utilization of
//! a resource the same way, and [`Repeater`] drives periodic actions such as
//! monitoring reports and power sampling.

use wattdb_common::{SimDuration, SimTime};

use crate::kernel::Sim;
use crate::resource::ResourceHandle;

/// Computes per-window utilization of a [`Resource`] from deltas of its
/// busy-time integral.
///
/// [`Resource`]: crate::resource::Resource
#[derive(Debug)]
pub struct UtilizationProbe {
    last_integral: u64,
    last_time: SimTime,
}

impl Default for UtilizationProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl UtilizationProbe {
    /// A probe whose first sample covers from time zero.
    pub fn new() -> Self {
        Self {
            last_integral: 0,
            last_time: SimTime::ZERO,
        }
    }

    /// Utilization (0.0–1.0) of `res` since the previous `sample` call.
    /// An empty window returns 0.
    pub fn sample(&mut self, res: &ResourceHandle, now: SimTime) -> f64 {
        let mut r = res.borrow_mut();
        let integral = r.busy_integral_us(now);
        let slots = r.slots() as u64;
        drop(r);
        let d_busy = integral - self.last_integral;
        let d_t = now.since(self.last_time).as_micros();
        self.last_integral = integral;
        self.last_time = now;
        if d_t == 0 {
            0.0
        } else {
            (d_busy as f64 / (d_t * slots) as f64).min(1.0)
        }
    }
}

/// Schedules a closure every `period`; the closure returns `true` to keep
/// going or `false` to stop.
pub struct Repeater;

impl Repeater {
    /// Start repeating `f` every `period`, with the first firing one period
    /// from now.
    ///
    /// Thin wrapper over [`Sim::every`], which re-arms by reusing the
    /// event's arena entry — a steady-state firing allocates nothing.
    pub fn every(sim: &mut Sim, period: SimDuration, f: impl FnMut(&mut Sim) -> bool + 'static) {
        sim.every(period, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::Resource;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn utilization_half_busy_window() {
        let mut sim = Sim::new();
        let res = Resource::new("disk", 1);
        Resource::submit(
            &res,
            &mut sim,
            SimDuration::from_micros(500),
            Box::new(|_| {}),
        );
        sim.run_until(SimTime::from_micros(1_000));
        let mut probe = UtilizationProbe::new();
        let u = probe.sample(&res, sim.now());
        assert!((u - 0.5).abs() < 1e-9, "expected 0.5, got {u}");
        // Next window is idle.
        sim.run_until(SimTime::from_micros(2_000));
        assert_eq!(probe.sample(&res, sim.now()), 0.0);
    }

    #[test]
    fn utilization_multi_slot() {
        let mut sim = Sim::new();
        let res = Resource::new("cpu", 2);
        // One of two cores busy the whole window → 50 %.
        Resource::submit(
            &res,
            &mut sim,
            SimDuration::from_micros(1_000),
            Box::new(|_| {}),
        );
        sim.run_until(SimTime::from_micros(1_000));
        let mut probe = UtilizationProbe::new();
        assert!((probe.sample(&res, sim.now()) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_width_window_is_zero() {
        let sim = Sim::new();
        let res = Resource::new("cpu", 1);
        let mut probe = UtilizationProbe::new();
        assert_eq!(probe.sample(&res, sim.now()), 0.0);
        assert_eq!(probe.sample(&res, sim.now()), 0.0);
    }

    #[test]
    fn repeater_fires_until_stopped() {
        let mut sim = Sim::new();
        let hits: Rc<RefCell<Vec<SimTime>>> = Rc::new(RefCell::new(Vec::new()));
        let h = hits.clone();
        Repeater::every(&mut sim, SimDuration::from_secs(1), move |sim| {
            h.borrow_mut().push(sim.now());
            h.borrow().len() < 3
        });
        sim.run_to_completion();
        assert_eq!(
            *hits.borrow(),
            vec![
                SimTime::from_secs(1),
                SimTime::from_secs(2),
                SimTime::from_secs(3)
            ]
        );
    }
}
