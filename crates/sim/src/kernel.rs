//! The event loop: a virtual clock plus an ordered queue of continuations.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use wattdb_common::{SimDuration, SimTime};

/// A scheduled continuation. Events own their environment via `move`
/// closures (typically capturing `Rc<RefCell<...>>` handles to shared
/// cluster state).
pub type EventFn = Box<dyn FnOnce(&mut Sim)>;

struct Entry {
    at: SimTime,
    seq: u64,
    f: EventFn,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. seq breaks ties FIFO.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The simulation kernel.
///
/// ```
/// use wattdb_sim::Sim;
/// use wattdb_common::{SimDuration, SimTime};
/// use std::{cell::RefCell, rc::Rc};
///
/// let mut sim = Sim::new();
/// let log = Rc::new(RefCell::new(Vec::new()));
/// let l = log.clone();
/// sim.after(SimDuration::from_millis(5), move |sim| {
///     l.borrow_mut().push(sim.now());
/// });
/// sim.run_to_completion();
/// assert_eq!(log.borrow()[0], SimTime::from_millis(5));
/// ```
pub struct Sim {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Entry>,
    executed: u64,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// A simulator at time zero with an empty queue.
    pub fn new() -> Self {
        Self {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            executed: 0,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `f` at absolute time `at`. Scheduling in the past is a logic
    /// error and panics (it would silently reorder causality otherwise).
    pub fn schedule(&mut self, at: SimTime, f: impl FnOnce(&mut Sim) + 'static) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < now {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Entry {
            at,
            seq,
            f: Box::new(f),
        });
    }

    /// Schedule `f` after a relative delay.
    pub fn after(&mut self, delay: SimDuration, f: impl FnOnce(&mut Sim) + 'static) {
        self.schedule(self.now + delay, f);
    }

    /// Execute the next event, if any. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some(e) => {
                debug_assert!(e.at >= self.now);
                self.now = e.at;
                self.executed += 1;
                (e.f)(self);
                true
            }
            None => false,
        }
    }

    /// Run until the queue drains. Returns events executed by this call.
    pub fn run_to_completion(&mut self) -> u64 {
        let before = self.executed;
        while self.step() {}
        self.executed - before
    }

    /// Run all events with `time <= t`, then advance the clock to exactly
    /// `t` (even if idle). Returns events executed by this call.
    pub fn run_until(&mut self, t: SimTime) -> u64 {
        let before = self.executed;
        while let Some(e) = self.queue.peek() {
            if e.at > t {
                break;
            }
            self.step();
        }
        if t > self.now {
            self.now = t;
        }
        self.executed - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    type EventLog = Rc<RefCell<Vec<(SimTime, u32)>>>;

    fn recorder() -> (EventLog, impl Fn(u32) -> EventFn) {
        let log: EventLog = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        let mk = move |tag: u32| -> EventFn {
            let l = l.clone();
            Box::new(move |sim: &mut Sim| l.borrow_mut().push((sim.now(), tag)))
        };
        (log, mk)
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        sim.schedule(SimTime::from_millis(30), mk(3));
        sim.schedule(SimTime::from_millis(10), mk(1));
        sim.schedule(SimTime::from_millis(20), mk(2));
        assert_eq!(sim.run_to_completion(), 3);
        let tags: Vec<u32> = log.borrow().iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_millis(30));
    }

    #[test]
    fn equal_time_events_fifo() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        for i in 0..10 {
            sim.schedule(SimTime::from_millis(5), mk(i));
        }
        sim.run_to_completion();
        let tags: Vec<u32> = log.borrow().iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        let follow = mk(2);
        sim.after(SimDuration::from_millis(1), move |sim| {
            sim.after(SimDuration::from_millis(1), follow);
        });
        sim.run_to_completion();
        assert_eq!(log.borrow()[0], (SimTime::from_millis(2), 2));
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        sim.schedule(SimTime::from_secs(1), mk(1));
        sim.schedule(SimTime::from_secs(3), mk(3));
        let n = sim.run_until(SimTime::from_secs(2));
        assert_eq!(n, 1);
        assert_eq!(sim.now(), SimTime::from_secs(2), "idle clock advance");
        assert_eq!(log.borrow().len(), 1);
        sim.run_to_completion();
        assert_eq!(log.borrow().len(), 2);
    }

    #[test]
    fn run_until_inclusive_of_boundary() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        sim.schedule(SimTime::from_secs(2), mk(1));
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(log.borrow().len(), 1);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Sim::new();
        sim.schedule(SimTime::from_secs(5), |_| {});
        sim.run_to_completion();
        sim.schedule(SimTime::from_secs(1), |_| {});
    }

    #[test]
    fn zero_delay_event_runs_at_same_time() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        let e = mk(7);
        sim.after(SimDuration::from_millis(4), move |sim| {
            sim.after(SimDuration::ZERO, e);
        });
        sim.run_to_completion();
        assert_eq!(log.borrow()[0], (SimTime::from_millis(4), 7));
    }

    #[test]
    fn counters() {
        let mut sim = Sim::new();
        sim.after(SimDuration::from_millis(1), |_| {});
        sim.after(SimDuration::from_millis(2), |_| {});
        assert_eq!(sim.pending(), 2);
        sim.run_to_completion();
        assert_eq!(sim.events_executed(), 2);
        assert_eq!(sim.pending(), 0);
    }
}
