//! The event loop: a virtual clock plus an ordered queue of continuations.
//!
//! # Queue layout — hierarchical timer wheel
//!
//! The kernel's traffic is dominated by short periodic timers: client
//! think-times, WAL group-commit ticks, monitoring windows, power
//! samples. A single `BinaryHeap` pays `O(log n)` per insert *and*
//! allocates a boxed closure per firing, which caps how many clients a
//! scenario can model. The queue is therefore split three ways:
//!
//! * a **timer wheel** of 256 buckets, each 1.024 ms wide, giving
//!   `O(1)` insertion for everything within the ~262 ms horizon where
//!   the periodic traffic lives;
//! * an **overflow heap** for events beyond the horizon (rare: long
//!   experiment timers, drift horizons);
//! * a **current-batch heap** holding the events of the slot being
//!   drained, so firing order stays exactly `(time, seq)` — byte-level
//!   deterministic and FIFO on ties, same as the old single heap.
//!
//! Event payloads live in an **arena** with a free list. A one-shot
//! event costs one closure box; a repeating event ([`Sim::every`])
//! boxes its closure *once* and re-arms by reusing its arena slot, so a
//! steady-state repeater firing performs **zero heap allocations**
//! (asserted by the counting-allocator test in `tests/alloc_free.rs`).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use wattdb_common::{SimDuration, SimTime};

/// A scheduled continuation. Events own their environment via `move`
/// closures (typically capturing `Rc<RefCell<...>>` handles to shared
/// cluster state).
pub type EventFn = Box<dyn FnOnce(&mut Sim)>;

/// Closure of a repeating event: return `true` to fire again one period
/// later, `false` to stop and release the entry.
pub type RepeatFn = Box<dyn FnMut(&mut Sim) -> bool>;

/// Slot width is `2^SLOT_SHIFT` µs = 1.024 ms (a power of two so the
/// slot of a timestamp is a shift, not a division).
const SLOT_SHIFT: u32 = 10;
/// Number of wheel slots; horizon = 256 × 1.024 ms ≈ 262 ms.
const WHEEL_SLOTS: u64 = 256;

/// What an arena entry currently holds.
enum EventKind {
    /// Free-list link; `u32::MAX` terminates the list.
    Empty {
        next_free: u32,
    },
    Once(EventFn),
    Repeat {
        f: RepeatFn,
        period: SimDuration,
    },
}

/// Arena entry: the payload plus the `(at, seq)` key it is currently
/// scheduled under.
struct Entry {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

/// Heap key referencing an arena entry. Ordered so the *earliest*
/// `(at, seq)` pops first from `BinaryHeap` (which is a max-heap).
struct Key {
    at: SimTime,
    seq: u64,
    idx: u32,
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted so the earliest (time, seq) pops first. seq breaks
        // ties FIFO.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

const NO_FREE: u32 = u32::MAX;

/// The simulation kernel.
///
/// ```
/// use wattdb_sim::Sim;
/// use wattdb_common::{SimDuration, SimTime};
/// use std::{cell::RefCell, rc::Rc};
///
/// let mut sim = Sim::new();
/// let log = Rc::new(RefCell::new(Vec::new()));
/// let l = log.clone();
/// sim.after(SimDuration::from_millis(5), move |sim| {
///     l.borrow_mut().push(sim.now());
/// });
/// sim.run_to_completion();
/// assert_eq!(log.borrow()[0], SimTime::from_millis(5));
/// ```
pub struct Sim {
    now: SimTime,
    seq: u64,
    executed: u64,
    /// Arena of event payloads; indices are stable while scheduled.
    arena: Vec<Entry>,
    /// Head of the arena free list (`NO_FREE` when exhausted).
    free_head: u32,
    /// Near-future buckets: slot `t & (WHEEL_SLOTS-1)` holds the
    /// (unsorted) entries of wheel tick `t`, for ticks in
    /// `(cursor, cursor + WHEEL_SLOTS)`.
    wheel: Vec<Vec<u32>>,
    /// Total entries across all wheel slots.
    wheel_len: usize,
    /// Events beyond the wheel horizon.
    overflow: BinaryHeap<Key>,
    /// Events of the tick currently being drained, in exact
    /// `(at, seq)` order.
    current: BinaryHeap<Key>,
    /// Wheel tick the `current` batch was drained up to. All wheel
    /// entries sit at ticks strictly greater than `cursor`.
    cursor: u64,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn tick_of(at: SimTime) -> u64 {
    at.0 >> SLOT_SHIFT
}

impl Sim {
    /// A simulator at time zero with an empty queue.
    pub fn new() -> Self {
        Self {
            now: SimTime::ZERO,
            seq: 0,
            executed: 0,
            arena: Vec::new(),
            free_head: NO_FREE,
            // Pre-size each slot so the first event landing in a
            // never-touched bucket doesn't allocate mid-run.
            wheel: (0..WHEEL_SLOTS).map(|_| Vec::with_capacity(4)).collect(),
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            current: BinaryHeap::new(),
            cursor: 0,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.current.len() + self.wheel_len + self.overflow.len()
    }

    /// Grab an arena slot off the free list (or grow the arena) and
    /// fill it.
    fn alloc_entry(&mut self, at: SimTime, seq: u64, kind: EventKind) -> u32 {
        if self.free_head != NO_FREE {
            let idx = self.free_head;
            let e = &mut self.arena[idx as usize];
            self.free_head = match e.kind {
                EventKind::Empty { next_free } => next_free,
                _ => unreachable!("free-list entry not empty"),
            };
            e.at = at;
            e.seq = seq;
            e.kind = kind;
            idx
        } else {
            let idx = u32::try_from(self.arena.len()).expect("event arena overflow");
            self.arena.push(Entry { at, seq, kind });
            idx
        }
    }

    fn release_entry(&mut self, idx: u32) {
        self.arena[idx as usize].kind = EventKind::Empty {
            next_free: self.free_head,
        };
        self.free_head = idx;
    }

    /// File an already-allocated entry under its `(at, seq)` key.
    fn enqueue(&mut self, idx: u32) {
        let (at, seq) = {
            let e = &self.arena[idx as usize];
            (e.at, e.seq)
        };
        let tick = tick_of(at);
        if tick <= self.cursor {
            // The entry's tick has already been drained (or is being
            // drained): join the current batch directly. `schedule`
            // guarantees `at >= now`, so order is still honoured.
            self.current.push(Key { at, seq, idx });
        } else if tick - self.cursor < WHEEL_SLOTS {
            self.wheel[(tick & (WHEEL_SLOTS - 1)) as usize].push(idx);
            self.wheel_len += 1;
        } else {
            self.overflow.push(Key { at, seq, idx });
        }
    }

    /// Ensure `current` holds the next batch of runnable events.
    /// Returns `false` when nothing is pending anywhere.
    fn refill_current(&mut self) -> bool {
        if !self.current.is_empty() {
            return true;
        }
        if self.wheel_len == 0 && self.overflow.is_empty() {
            return false;
        }
        // Earliest occupied wheel tick, if any. Slots map back to a
        // unique tick in (cursor, cursor + WHEEL_SLOTS), so scanning
        // the next WHEEL_SLOTS-1 ticks visits each slot once.
        let mut next_tick = None;
        if self.wheel_len > 0 {
            for t in (self.cursor + 1)..(self.cursor + WHEEL_SLOTS) {
                if !self.wheel[(t & (WHEEL_SLOTS - 1)) as usize].is_empty() {
                    next_tick = Some(t);
                    break;
                }
            }
        }
        // An overflow entry can be earlier than every wheel entry once
        // the cursor has advanced past its insertion horizon.
        if let Some(k) = self.overflow.peek() {
            let t = tick_of(k.at);
            if next_tick.is_none_or(|w| t < w) {
                next_tick = Some(t);
            }
        }
        let tick = next_tick.expect("pending count said non-empty");
        self.cursor = tick;
        if self.wheel_len > 0 {
            let slot = &mut self.wheel[(tick & (WHEEL_SLOTS - 1)) as usize];
            self.wheel_len -= slot.len();
            for idx in slot.drain(..) {
                let e = &self.arena[idx as usize];
                debug_assert_eq!(tick_of(e.at), tick);
                self.current.push(Key {
                    at: e.at,
                    seq: e.seq,
                    idx,
                });
            }
        }
        while let Some(k) = self.overflow.peek() {
            if tick_of(k.at) != tick {
                break;
            }
            let k = self.overflow.pop().expect("peeked");
            self.current.push(k);
        }
        true
    }

    /// Schedule `f` at absolute time `at`. Scheduling in the past is a logic
    /// error and panics (it would silently reorder causality otherwise).
    pub fn schedule(&mut self, at: SimTime, f: impl FnOnce(&mut Sim) + 'static) {
        assert!(
            at >= self.now,
            "scheduling into the past: {at} < now {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let idx = self.alloc_entry(at, seq, EventKind::Once(Box::new(f)));
        self.enqueue(idx);
    }

    /// Schedule `f` after a relative delay.
    pub fn after(&mut self, delay: SimDuration, f: impl FnOnce(&mut Sim) + 'static) {
        self.schedule(self.now + delay, f);
    }

    /// Repeat `f` every `period`, first firing one period from now.
    /// The closure is boxed once; each firing re-arms by reusing the
    /// same arena entry, so steady-state repetition allocates nothing.
    pub fn every(&mut self, period: SimDuration, f: impl FnMut(&mut Sim) -> bool + 'static) {
        assert!(period.as_micros() > 0, "repeater period must be positive");
        let at = self.now + period;
        let seq = self.seq;
        self.seq += 1;
        let idx = self.alloc_entry(
            at,
            seq,
            EventKind::Repeat {
                f: Box::new(f),
                period,
            },
        );
        self.enqueue(idx);
    }

    /// Execute the next event, if any. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        if !self.refill_current() {
            return false;
        }
        let key = self.current.pop().expect("refill_current said non-empty");
        debug_assert!(key.at >= self.now);
        self.now = key.at;
        self.executed += 1;
        // Move the payload out so the arena isn't borrowed while the
        // closure runs (events freely schedule more events).
        let kind = std::mem::replace(
            &mut self.arena[key.idx as usize].kind,
            EventKind::Empty { next_free: NO_FREE },
        );
        match kind {
            EventKind::Once(f) => {
                self.release_entry(key.idx);
                f(self);
            }
            EventKind::Repeat { mut f, period } => {
                if f(self) {
                    // Re-arm in place: same entry, same closure box,
                    // fresh (at, seq) — identical ordering to the old
                    // "schedule a new closure after each firing" path
                    // without its per-period allocation.
                    let at = self.now + period;
                    let seq = self.seq;
                    self.seq += 1;
                    let e = &mut self.arena[key.idx as usize];
                    e.at = at;
                    e.seq = seq;
                    e.kind = EventKind::Repeat { f, period };
                    self.enqueue(key.idx);
                } else {
                    self.release_entry(key.idx);
                }
            }
            EventKind::Empty { .. } => unreachable!("scheduled entry was empty"),
        }
        true
    }

    /// Run until the queue drains. Returns events executed by this call.
    pub fn run_to_completion(&mut self) -> u64 {
        let before = self.executed;
        while self.step() {}
        self.executed - before
    }

    /// Run all events with `time <= t`, then advance the clock to exactly
    /// `t` (even if idle). Returns events executed by this call.
    pub fn run_until(&mut self, t: SimTime) -> u64 {
        let before = self.executed;
        while self.refill_current() {
            let next_at = self.current.peek().expect("refilled").at;
            if next_at > t {
                break;
            }
            self.step();
        }
        if t > self.now {
            self.now = t;
        }
        self.executed - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    type EventLog = Rc<RefCell<Vec<(SimTime, u32)>>>;

    fn recorder() -> (EventLog, impl Fn(u32) -> EventFn) {
        let log: EventLog = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        let mk = move |tag: u32| -> EventFn {
            let l = l.clone();
            Box::new(move |sim: &mut Sim| l.borrow_mut().push((sim.now(), tag)))
        };
        (log, mk)
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        sim.schedule(SimTime::from_millis(30), mk(3));
        sim.schedule(SimTime::from_millis(10), mk(1));
        sim.schedule(SimTime::from_millis(20), mk(2));
        assert_eq!(sim.run_to_completion(), 3);
        let tags: Vec<u32> = log.borrow().iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_millis(30));
    }

    #[test]
    fn equal_time_events_fifo() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        for i in 0..10 {
            sim.schedule(SimTime::from_millis(5), mk(i));
        }
        sim.run_to_completion();
        let tags: Vec<u32> = log.borrow().iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        let follow = mk(2);
        sim.after(SimDuration::from_millis(1), move |sim| {
            sim.after(SimDuration::from_millis(1), follow);
        });
        sim.run_to_completion();
        assert_eq!(log.borrow()[0], (SimTime::from_millis(2), 2));
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        sim.schedule(SimTime::from_secs(1), mk(1));
        sim.schedule(SimTime::from_secs(3), mk(3));
        let n = sim.run_until(SimTime::from_secs(2));
        assert_eq!(n, 1);
        assert_eq!(sim.now(), SimTime::from_secs(2), "idle clock advance");
        assert_eq!(log.borrow().len(), 1);
        sim.run_to_completion();
        assert_eq!(log.borrow().len(), 2);
    }

    #[test]
    fn run_until_inclusive_of_boundary() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        sim.schedule(SimTime::from_secs(2), mk(1));
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(log.borrow().len(), 1);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Sim::new();
        sim.schedule(SimTime::from_secs(5), |_| {});
        sim.run_to_completion();
        sim.schedule(SimTime::from_secs(1), |_| {});
    }

    #[test]
    fn zero_delay_event_runs_at_same_time() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        let e = mk(7);
        sim.after(SimDuration::from_millis(4), move |sim| {
            sim.after(SimDuration::ZERO, e);
        });
        sim.run_to_completion();
        assert_eq!(log.borrow()[0], (SimTime::from_millis(4), 7));
    }

    #[test]
    fn counters() {
        let mut sim = Sim::new();
        sim.after(SimDuration::from_millis(1), |_| {});
        sim.after(SimDuration::from_millis(2), |_| {});
        assert_eq!(sim.pending(), 2);
        sim.run_to_completion();
        assert_eq!(sim.events_executed(), 2);
        assert_eq!(sim.pending(), 0);
    }

    // ---- timer-wheel specifics ----

    /// Interleaved near (wheel), far (overflow), and same-tick events
    /// still fire in exact (time, seq) order.
    #[test]
    fn wheel_and_overflow_interleave_in_order() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        // Far beyond the 262 ms horizon → overflow heap.
        sim.schedule(SimTime::from_secs(10), mk(4));
        // Within the horizon → wheel.
        sim.schedule(SimTime::from_millis(100), mk(1));
        sim.schedule(SimTime::from_millis(200), mk(2));
        // Same wheel slot as event 1 but later micros within it.
        sim.schedule(SimTime::from_micros(100_500), mk(5));
        // Beyond horizon, earlier than the other overflow event.
        sim.schedule(SimTime::from_secs(5), mk(3));
        sim.run_to_completion();
        let order: Vec<u32> = log.borrow().iter().map(|&(_, t)| t).collect();
        assert_eq!(order, vec![1, 5, 2, 3, 4]);
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    /// Overflow events whose tick has entered the horizon fire before
    /// later wheel events scheduled afterwards.
    #[test]
    fn overflow_entering_horizon_beats_fresh_wheel_events() {
        let mut sim = Sim::new();
        let (log, mk) = recorder();
        sim.schedule(SimTime::from_secs(1), mk(1)); // overflow at t=0
        let late = mk(2);
        sim.schedule(SimTime::from_millis(990), move |sim| {
            // Now the 1 s event is within the wheel horizon of `now`.
            sim.after(SimDuration::from_millis(50), late); // t = 1.04 s
        });
        sim.run_to_completion();
        let order: Vec<u32> = log.borrow().iter().map(|&(_, t)| t).collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn arena_slots_are_reused() {
        let mut sim = Sim::new();
        for round in 0..100u64 {
            sim.after(SimDuration::from_millis(1), |_| {});
            sim.run_until(SimTime::from_millis(round + 1));
        }
        // One live event at a time → the arena never grows past the
        // first allocation.
        assert_eq!(sim.arena.len(), 1);
    }

    #[test]
    fn kernel_every_repeats_and_stops() {
        let mut sim = Sim::new();
        let hits: Rc<RefCell<Vec<SimTime>>> = Rc::new(RefCell::new(Vec::new()));
        let h = hits.clone();
        sim.every(SimDuration::from_secs(1), move |sim| {
            h.borrow_mut().push(sim.now());
            h.borrow().len() < 3
        });
        sim.run_to_completion();
        assert_eq!(
            *hits.borrow(),
            vec![
                SimTime::from_secs(1),
                SimTime::from_secs(2),
                SimTime::from_secs(3)
            ]
        );
        assert_eq!(sim.pending(), 0);
    }
}
