//! Per-query cost attribution, the data behind Fig. 7 of the paper.
//!
//! Every unit of time a query spends — computing, waiting for disk, waiting
//! for a lock, appending to the log — is attributed to a [`CostCategory`].
//! Aggregating profiles across queries reproduces the paper's breakdown of
//! "impact factors on query runtime when rebalancing".

use std::fmt;
use std::ops::{Add, AddAssign};

use wattdb_common::SimDuration;

/// Where a slice of query time went. Matches the component legend of
/// Fig. 7: logging, latching, locking, network I/O, disk I/O, other;
/// `Cpu` is folded into `Other` when rendering the figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostCategory {
    /// Useful computation on a core (rendered within "other").
    Cpu,
    /// Disk service + disk queue time.
    DiskIo,
    /// Network serialization + propagation + queue time.
    NetworkIo,
    /// Waiting for record/partition locks.
    Locking,
    /// Waiting for page latches / buffer frames.
    Latching,
    /// WAL appends and log-flush waits.
    Logging,
    /// Anything else (scheduling gaps, think-time excluded).
    Other,
}

impl CostCategory {
    /// All categories, in the order Fig. 7 lists them.
    pub const ALL: [CostCategory; 7] = [
        CostCategory::Logging,
        CostCategory::Latching,
        CostCategory::Locking,
        CostCategory::NetworkIo,
        CostCategory::DiskIo,
        CostCategory::Cpu,
        CostCategory::Other,
    ];

    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            CostCategory::Cpu => "cpu",
            CostCategory::DiskIo => "disk IO",
            CostCategory::NetworkIo => "network IO",
            CostCategory::Locking => "locking",
            CostCategory::Latching => "latching",
            CostCategory::Logging => "logging",
            CostCategory::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            CostCategory::Logging => 0,
            CostCategory::Latching => 1,
            CostCategory::Locking => 2,
            CostCategory::NetworkIo => 3,
            CostCategory::DiskIo => 4,
            CostCategory::Cpu => 5,
            CostCategory::Other => 6,
        }
    }
}

/// Time spent per category for one query/transaction (or aggregated over
/// many).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostProfile {
    slots: [u64; 7], // µs per category, indexed by CostCategory::index
}

impl CostProfile {
    /// An all-zero profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `d` against category `cat`.
    #[inline]
    pub fn record(&mut self, cat: CostCategory, d: SimDuration) {
        self.slots[cat.index()] += d.as_micros();
    }

    /// Time attributed to `cat`.
    pub fn get(&self, cat: CostCategory) -> SimDuration {
        SimDuration::from_micros(self.slots[cat.index()])
    }

    /// Total attributed time across all categories.
    pub fn total(&self) -> SimDuration {
        SimDuration::from_micros(self.slots.iter().sum())
    }

    /// Divide all entries by `n` (for per-query means). `n = 0` is a no-op.
    pub fn scaled_down(&self, n: u64) -> CostProfile {
        if n == 0 {
            return *self;
        }
        let mut out = *self;
        for s in &mut out.slots {
            *s /= n;
        }
        out
    }
}

impl Add for CostProfile {
    type Output = CostProfile;
    fn add(self, rhs: CostProfile) -> CostProfile {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for CostProfile {
    fn add_assign(&mut self, rhs: CostProfile) {
        for (a, b) in self.slots.iter_mut().zip(rhs.slots.iter()) {
            *a += b;
        }
    }
}

impl fmt::Display for CostProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for cat in CostCategory::ALL {
            let v = self.get(cat);
            if v > SimDuration::ZERO {
                if !first {
                    write!(f, " ")?;
                }
                write!(f, "{}={}", cat.label(), v)?;
                first = false;
            }
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut p = CostProfile::new();
        p.record(CostCategory::DiskIo, SimDuration::from_millis(3));
        p.record(CostCategory::DiskIo, SimDuration::from_millis(2));
        p.record(CostCategory::Locking, SimDuration::from_millis(1));
        assert_eq!(p.get(CostCategory::DiskIo), SimDuration::from_millis(5));
        assert_eq!(p.get(CostCategory::Locking), SimDuration::from_millis(1));
        assert_eq!(p.get(CostCategory::Cpu), SimDuration::ZERO);
        assert_eq!(p.total(), SimDuration::from_millis(6));
    }

    #[test]
    fn aggregation_and_scaling() {
        let mut a = CostProfile::new();
        a.record(CostCategory::Logging, SimDuration::from_micros(100));
        let mut b = CostProfile::new();
        b.record(CostCategory::Logging, SimDuration::from_micros(300));
        b.record(CostCategory::Cpu, SimDuration::from_micros(40));
        let sum = a + b;
        assert_eq!(
            sum.get(CostCategory::Logging),
            SimDuration::from_micros(400)
        );
        let mean = sum.scaled_down(2);
        assert_eq!(
            mean.get(CostCategory::Logging),
            SimDuration::from_micros(200)
        );
        assert_eq!(mean.get(CostCategory::Cpu), SimDuration::from_micros(20));
        // scaled_down(0) leaves profile unchanged rather than dividing by 0.
        assert_eq!(sum.scaled_down(0), sum);
    }

    #[test]
    fn display_omits_zero_categories() {
        let mut p = CostProfile::new();
        p.record(CostCategory::NetworkIo, SimDuration::from_micros(5));
        let s = p.to_string();
        assert!(s.contains("network IO"));
        assert!(!s.contains("disk"));
        assert_eq!(CostProfile::new().to_string(), "(empty)");
    }

    #[test]
    fn all_categories_distinct_indices() {
        use std::collections::HashSet;
        let idx: HashSet<usize> = CostCategory::ALL.iter().map(|c| c.index()).collect();
        assert_eq!(idx.len(), 7);
    }
}
