//! Steady-state repeater firings must be allocation-free.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! warm-up phase (arena growth, heap/wheel capacity growth amortize
//! out), a long stretch of repeater firings and one-shot reschedules
//! must report **zero** new allocations from the kernel itself. This is
//! the contract that lets a 100×-client scenario run: the event loop's
//! cost per firing is a few pointer moves, not a malloc.
//!
//! Lives in its own test binary because a global allocator is
//! process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use wattdb_common::{SimDuration, SimTime};
use wattdb_sim::{Repeater, Sim};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A repeater firing in steady state performs zero heap allocations:
/// the closure box and arena entry are reused across periods.
#[test]
fn steady_state_repeater_is_allocation_free() {
    let mut sim = Sim::new();
    let count = Rc::new(RefCell::new(0u64));
    let c = count.clone();
    Repeater::every(&mut sim, SimDuration::from_millis(7), move |_| {
        *c.borrow_mut() += 1;
        true
    });
    // A second repeater on a different period keeps the wheel honest
    // (two live arena entries, interleaving slots).
    Repeater::every(&mut sim, SimDuration::from_millis(13), |_| true);

    // Warm-up: arena, wheel slot vectors, and heap capacity stabilize.
    sim.run_until(SimTime::from_secs(2));
    let fired_before = *count.borrow();
    let before = allocs();

    sim.run_until(SimTime::from_secs(12));

    let after = allocs();
    let fired = *count.borrow() - fired_before;
    assert!(fired > 1_000, "repeater actually ran ({fired} firings)");
    assert_eq!(
        after - before,
        0,
        "steady-state repeater firings allocated ({} allocs over {fired} firings)",
        after - before
    );
}

/// One-shot events cost exactly the closure box: the arena entry is
/// recycled through the free list, so `n` sequential events allocate
/// `n` boxes, not `n` queue entries plus `n` boxes.
#[test]
fn one_shot_events_reuse_arena_entries() {
    let mut sim = Sim::new();
    // Warm up: first event grows the arena and wheel slot.
    sim.after(SimDuration::from_millis(1), |_| {});
    sim.run_until(SimTime::from_millis(2));

    let before = allocs();
    let n = 10_000u64;
    for i in 0..n {
        sim.after(SimDuration::from_millis(1), |_| {});
        sim.run_until(SimTime::from_millis(3 + i));
    }
    let spent = allocs() - before;
    // Exactly one allocation per event (its boxed closure) — a small
    // slack covers allocator-internal bookkeeping.
    assert!(
        spent <= n + n / 10,
        "expected ~{n} allocs (one box per event), got {spent}"
    );
}
