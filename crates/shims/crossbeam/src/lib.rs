//! Minimal offline stand-in for `crossbeam`'s scoped threads.
//!
//! [`scope`] mirrors `crossbeam::scope`: the closure receives a [`Scope`]
//! whose `spawn` passes the scope back into each thread closure (so
//! threads can spawn siblings). Implemented over [`std::thread::scope`],
//! which provides the same join-before-return guarantee. One behavioural
//! difference: a panicking child thread propagates at scope exit instead
//! of surfacing through the returned `Result` — under `cargo test` both
//! fail the test identically.

/// Spawn handle passed to the [`scope`] closure and to every spawned
/// thread's closure.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread; it is joined before [`scope`] returns.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Create a scope for spawning borrowing threads; all threads are joined
/// before this returns.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn threads_borrow_and_join() {
        let counter = AtomicU32::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn nested_spawn_from_child() {
        let counter = AtomicU32::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
