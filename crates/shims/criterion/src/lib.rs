//! Minimal offline stand-in for `criterion`.
//!
//! Each `bench_function` call runs the routine under a small wall-clock
//! budget (scaled by `measurement_time`) and prints the mean time per
//! iteration. The point is that `cargo bench` compiles and produces
//! comparable relative numbers offline; rigorous statistics arrive with
//! the real crate.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    #[allow(dead_code)]
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Number of samples (accepted for API compatibility).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let (iters, elapsed) = run_bench(self.warm_up_time, self.measurement_time, f);
        report(name, iters, elapsed);
        self
    }
}

/// A named collection of benchmarks sharing the parent's budgets.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let (iters, elapsed) = run_bench(
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            f,
        );
        report(&format!("{}/{name}", self.name), iters, elapsed);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_bench(
    warm_up: Duration,
    measure: Duration,
    mut f: impl FnMut(&mut Bencher),
) -> (u64, Duration) {
    // Warm-up pass: run without recording.
    let start = Instant::now();
    while start.elapsed() < warm_up {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
            budget: warm_up / 4,
        };
        f(&mut b);
    }
    // Measurement pass: keep invoking the routine until the budget is
    // spent; the Bencher accumulates per-iteration timing.
    let mut total_iters = 0u64;
    let mut total_elapsed = Duration::ZERO;
    let start = Instant::now();
    while start.elapsed() < measure {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
            budget: measure / 4,
        };
        f(&mut b);
        total_iters += b.iters;
        total_elapsed += b.elapsed;
    }
    (total_iters.max(1), total_elapsed)
}

fn report(name: &str, iters: u64, elapsed: Duration) {
    let ns = elapsed.as_nanos() as f64 / iters as f64;
    println!("  {name:<40} {ns:>12.1} ns/iter  ({iters} iters)");
}

/// How `iter_batched` amortizes setup cost (accepted for compatibility;
/// the shim always re-runs setup per batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine output; many iterations per setup batch.
    SmallInput,
    /// Large routine output; few iterations per setup batch.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Time `routine` in a tight loop.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let mut n = 1u64;
        let start = Instant::now();
        loop {
            for _ in 0..n {
                std::hint::black_box(routine());
                self.iters += 1;
            }
            if start.elapsed() >= self.budget {
                break;
            }
            n = (n * 2).min(1 << 16);
        }
        self.elapsed += start.elapsed();
    }

    /// Time `routine` over inputs produced by `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let deadline = Instant::now() + self.budget;
        loop {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// Declare a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("smoke");
        g.bench_function("add", |b| b.iter(|| 1u64 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
