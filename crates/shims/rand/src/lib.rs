//! Minimal offline stand-in for the crates.io `rand` crate.
//!
//! Implements exactly the subset WattDB-RS uses — `rngs::SmallRng`,
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen`] / [`Rng::gen_range`]
//! over integer and float ranges — on top of xoshiro256++, which has the
//! same flavour of small, fast, non-cryptographic state as the real
//! `SmallRng`. Streams are deterministic functions of the seed.

/// Low-level entropy source: 64 random bits per call.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from 64 random bits ("standard distribution").
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a generator can sample uniformly.
pub trait SampleRange {
    /// Element type produced.
    type Output;
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Rejection sampling against the largest multiple of `span`, so the
    // draw is exactly uniform (no modulo bias).
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % span;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// User-facing sampling helpers, blanket-implemented for every core rng.
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Small-state generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — 256 bits of state, top-tier statistical quality for
    /// a non-cryptographic generator.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64, as rand itself does.
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0u64..=3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let f = r.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_zero_one() {
        let mut r = SmallRng::seed_from_u64(2);
        let mean: f64 = (0..10_000).map(|_| r.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "{mean}");
    }
}
