//! Minimal offline stand-in for `parking_lot`.
//!
//! Provides [`Mutex`] and [`Condvar`] with parking_lot's ergonomics —
//! `lock()` returns the guard directly (no poisoning `Result`), and
//! `Condvar::wait` takes the guard by `&mut` — implemented over
//! `std::sync`. Poisoned std locks are treated as plain lock handoffs, as
//! parking_lot itself has no poisoning.

use std::ops::{Deref, DerefMut};

/// Mutual exclusion without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard by
    // value (std's wait consumes it) and put the re-acquired one back.
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { guard: Some(guard) }
    }

    /// Try to take the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

/// Condition variable compatible with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the lock and park until notified; the lock is
    /// re-held when this returns.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present");
        let reacquired = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.guard = Some(reacquired);
    }

    /// Wake one parked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every parked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_guards_data() {
        let m = Arc::new(Mutex::new(0u32));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        assert!(t.join().unwrap());
    }
}
