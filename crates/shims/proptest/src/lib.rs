//! Minimal offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map`, implemented for integer/float ranges,
//!   tuples (arity 2–3), [`Just`], and boxed unions;
//! * [`arbitrary::any`] for primitive types;
//! * [`collection::vec`] and [`collection::btree_set`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`], and
//!   [`prop_assert_eq!`] macros.
//!
//! Cases are generated from a deterministic per-test seed (a hash of the
//! test's name), so failures reproduce run over run. There is no
//! shrinking: a failing assertion panics immediately with the generated
//! inputs visible in the assertion message.

pub mod strategy;
pub mod test_runner;

/// Strategy trait and combinators (re-exported at the crate root too).
pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::ProptestConfig;

/// `any::<T>()` — the full value domain of a primitive type.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// The strategy covering `T`'s whole value domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length/size bounds accepted by collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Inclusive lower bound.
        pub min: usize,
        /// Exclusive upper bound.
        pub max: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, len_range)` — vectors of generated elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.below(self.size.min, self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size in `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `btree_set(element, size_range)` — sets of generated elements.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.below(self.size.min, self.size.max);
            let mut set = std::collections::BTreeSet::new();
            // Duplicates shrink the set below target; bound the retries so
            // narrow element domains still terminate.
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(16) + 64 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Everything a property-test file needs, star-importable.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// `proptest! { ... }` — run each enclosed test over many generated cases.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, ys in collection::vec(any::<u8>(), 0..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $( $(#[$attr:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..cfg.cases {
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// `prop_assert!` — assertion inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!` — equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `prop_assert_ne!` — inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// `prop_oneof!` — weighted (or unweighted) choice between strategies
/// producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        A(u64),
        B,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (0u64..10).prop_map(Op::A),
            1 => Just(Op::B),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, f in 0.25f64..0.75) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vectors_respect_length(ops in crate::collection::vec(op(), 1..20)) {
            prop_assert!(!ops.is_empty() && ops.len() < 20);
            for o in ops {
                if let Op::A(x) = o { prop_assert!(x < 10); }
            }
        }

        #[test]
        fn sets_hit_target_sizes(s in crate::collection::btree_set(0u64..100_000, 10..50)) {
            prop_assert!(s.len() >= 10 && s.len() < 50);
        }
    }

    #[test]
    fn deterministic_per_test_seed() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        let mut c = crate::test_runner::TestRng::deterministic("y");
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }
}
