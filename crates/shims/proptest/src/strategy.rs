//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe generation, so strategies of one value type can be mixed.
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms; weights must sum positive.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs positive total weight");
        Self { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut x = rng.below(0, self.total as usize) as u64;
        for (w, s) in &self.arms {
            let w = *w as u64;
            if x < w {
                return s.generate(rng);
            }
            x -= w;
        }
        unreachable!("weighted draw out of range")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.uniform_u64(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.uniform_u64(span + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}
