//! Case-count configuration and the deterministic test RNG.

/// How many generated cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic splitmix64 stream, seeded from the test's name so every
/// run (and every CI machine) generates the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary label (FNV-1a over the bytes).
    pub fn deterministic(label: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, span)` without modulo bias.
    pub fn uniform_u64(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % span;
            }
        }
    }

    /// Uniform draw in `[min, max)`.
    pub fn below(&mut self, min: usize, max: usize) -> usize {
        assert!(min < max, "empty draw range");
        min + self.uniform_u64((max - min) as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
