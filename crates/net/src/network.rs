//! The simulated Gigabit Ethernet interconnect.
//!
//! §3.1: nodes are "interconnected by a Gigabit Ethernet [...] All nodes
//! can communicate directly." The model: each node has a full-duplex NIC —
//! an egress and an ingress queueing resource of 1 Gbit/s each — plus a
//! fixed per-hop switch latency. A transfer occupies the sender's egress
//! and the receiver's ingress for its serialization time in parallel
//! (cut-through, not store-and-forward) and is delivered one hop latency
//! after both links are clear. Contention — the effect that makes remote
//! volcano `next()` calls catastrophic in Fig. 1 and bulk segment copies
//! interfere with query traffic — emerges from the queues.

use std::cell::Cell;
use std::rc::Rc;

use wattdb_common::{ByteSize, NetworkSpec, NodeId, SimDuration};
use wattdb_sim::{EventFn, Resource, ResourceHandle, Sim};

/// Per-node traffic counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct NicStats {
    /// Messages sent.
    pub tx_messages: u64,
    /// Bytes sent.
    pub tx_bytes: u64,
    /// Messages received.
    pub rx_messages: u64,
    /// Bytes received.
    pub rx_bytes: u64,
}

struct Nic {
    tx: ResourceHandle,
    rx: ResourceHandle,
    stats: Cell<NicStats>,
}

/// The cluster interconnect.
pub struct Network {
    spec: NetworkSpec,
    nics: Vec<Nic>,
}

impl Network {
    /// A switch fabric connecting `nodes` nodes.
    pub fn new(nodes: usize, spec: NetworkSpec) -> Self {
        let nics = (0..nodes)
            .map(|i| Nic {
                tx: Resource::new(format!("n{i}-nic-tx"), 1),
                rx: Resource::new(format!("n{i}-nic-rx"), 1),
                stats: Cell::new(NicStats::default()),
            })
            .collect();
        Self { spec, nics }
    }

    /// The network spec in force.
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// Number of attached nodes.
    pub fn nodes(&self) -> usize {
        self.nics.len()
    }

    /// Egress resource of a node (for utilization probes).
    pub fn tx_resource(&self, node: NodeId) -> &ResourceHandle {
        &self.nics[node.raw() as usize].tx
    }

    /// Ingress resource of a node.
    pub fn rx_resource(&self, node: NodeId) -> &ResourceHandle {
        &self.nics[node.raw() as usize].rx
    }

    /// Traffic counters for a node.
    pub fn stats(&self, node: NodeId) -> NicStats {
        self.nics[node.raw() as usize].stats.get()
    }

    /// Serialization time of `bytes` on one link.
    pub fn wire_time(&self, bytes: ByteSize) -> SimDuration {
        bytes.transfer_time(self.spec.bandwidth)
    }

    /// Estimated unloaded one-way latency for a message of `bytes`.
    pub fn estimate_one_way(&self, bytes: ByteSize) -> SimDuration {
        self.wire_time(bytes) + self.spec.hop_latency
    }

    /// Send `bytes` from `src` to `dst`; `delivered` fires at the receiver
    /// when the message arrives. Local sends (src == dst) skip the wire
    /// entirely (records move through main memory, §3.3). Transfers larger
    /// than 2 MiB are streamed in chunks so small messages (volcano calls,
    /// log shipping) interleave on the links instead of stalling behind a
    /// multi-second bulk copy.
    pub fn send(
        &self,
        sim: &mut Sim,
        src: NodeId,
        dst: NodeId,
        bytes: ByteSize,
        delivered: EventFn,
    ) {
        if src == dst {
            sim.after(SimDuration::ZERO, delivered);
            return;
        }
        const CHUNK: u64 = 2 * 1024 * 1024;
        if bytes.as_u64() > CHUNK {
            let first = ByteSize::bytes(CHUNK);
            let rest = ByteSize::bytes(bytes.as_u64() - CHUNK);
            let tx = self.nics[src.raw() as usize].tx.clone();
            let rx = self.nics[dst.raw() as usize].rx.clone();
            let spec = self.spec;
            let chain: EventFn = Box::new(move |sim: &mut Sim| {
                send_chunked(tx, rx, spec, sim, rest, delivered);
            });
            // Account the full message once, then stream.
            let mut st = self.nics[src.raw() as usize].stats.get();
            st.tx_messages += 1;
            st.tx_bytes += bytes.as_u64();
            self.nics[src.raw() as usize].stats.set(st);
            let mut sr = self.nics[dst.raw() as usize].stats.get();
            sr.rx_messages += 1;
            sr.rx_bytes += bytes.as_u64();
            self.nics[dst.raw() as usize].stats.set(sr);
            let tx2 = self.nics[src.raw() as usize].tx.clone();
            let rx2 = self.nics[dst.raw() as usize].rx.clone();
            send_piece(tx2, rx2, self.spec, sim, first, SimDuration::ZERO, chain);
            return;
        }
        let mut s = self.nics[src.raw() as usize].stats.get();
        s.tx_messages += 1;
        s.tx_bytes += bytes.as_u64();
        self.nics[src.raw() as usize].stats.set(s);
        let mut r = self.nics[dst.raw() as usize].stats.get();
        r.rx_messages += 1;
        r.rx_bytes += bytes.as_u64();
        self.nics[dst.raw() as usize].stats.set(r);

        let wire = self.wire_time(bytes);
        let hop = self.spec.hop_latency;
        // Join of egress and ingress occupancy; delivery one hop after the
        // later of the two completes.
        let remaining = Rc::new(Cell::new(2u8));
        let delivered = Rc::new(Cell::new(Some(delivered)));
        let make_arm = |label: &'static str| {
            let remaining = remaining.clone();
            let delivered = delivered.clone();
            let _ = label;
            Box::new(move |sim: &mut Sim| {
                remaining.set(remaining.get() - 1);
                if remaining.get() == 0 {
                    let done = delivered.take().expect("delivered once");
                    sim.after(hop, done);
                }
            }) as EventFn
        };
        Resource::submit(&self.nics[src.raw() as usize].tx, sim, wire, make_arm("tx"));
        Resource::submit(&self.nics[dst.raw() as usize].rx, sim, wire, make_arm("rx"));
    }
}

/// One chunk over the dual-occupancy links; `done` fires `hop` after both
/// directions clear (zero for intermediate chunks of a stream — the hop
/// latency is paid once per message, not per chunk).
fn send_piece(
    tx: ResourceHandle,
    rx: ResourceHandle,
    spec: NetworkSpec,
    sim: &mut Sim,
    bytes: ByteSize,
    hop: SimDuration,
    done: EventFn,
) {
    let wire = bytes.transfer_time(spec.bandwidth);
    let remaining = Rc::new(Cell::new(2u8));
    let done_cell = Rc::new(Cell::new(Some(done)));
    let mk = || {
        let remaining = remaining.clone();
        let done_cell = done_cell.clone();
        Box::new(move |sim: &mut Sim| {
            remaining.set(remaining.get() - 1);
            if remaining.get() == 0 {
                let d = done_cell.take().expect("once");
                sim.after(hop, d);
            }
        }) as EventFn
    };
    Resource::submit(&tx, sim, wire, mk());
    Resource::submit(&rx, sim, wire, mk());
}

fn send_chunked(
    tx: ResourceHandle,
    rx: ResourceHandle,
    spec: NetworkSpec,
    sim: &mut Sim,
    remaining_bytes: ByteSize,
    done: EventFn,
) {
    const CHUNK: u64 = 2 * 1024 * 1024;
    let total = remaining_bytes.as_u64();
    if total == 0 {
        sim.after(SimDuration::ZERO, done);
        return;
    }
    let this = ByteSize::bytes(total.min(CHUNK));
    let rest = ByteSize::bytes(total.saturating_sub(CHUNK));
    let last = rest.as_u64() == 0;
    let tx2 = tx.clone();
    let rx2 = rx.clone();
    let chain: EventFn = Box::new(move |sim: &mut Sim| {
        if last {
            done(sim);
        } else {
            send_chunked(tx2, rx2, spec, sim, rest, done);
        }
    });
    let hop = if last {
        spec.hop_latency
    } else {
        SimDuration::ZERO
    };
    send_piece(tx, rx, spec, sim, this, hop, chain);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use wattdb_common::SimTime;

    fn net(nodes: usize) -> Network {
        Network::new(nodes, NetworkSpec::default())
    }

    fn send_and_time(
        net: &Network,
        sim: &mut Sim,
        src: u16,
        dst: u16,
        bytes: u64,
    ) -> Rc<RefCell<Option<SimTime>>> {
        let at = Rc::new(RefCell::new(None));
        let a = at.clone();
        net.send(
            sim,
            NodeId(src),
            NodeId(dst),
            ByteSize::bytes(bytes),
            Box::new(move |sim| *a.borrow_mut() = Some(sim.now())),
        );
        at
    }

    #[test]
    fn small_message_dominated_by_hop_latency() {
        let mut sim = Sim::new();
        let n = net(3);
        let at = send_and_time(&n, &mut sim, 0, 1, 100);
        sim.run_to_completion();
        let t = at.borrow().unwrap().as_micros();
        // ~450 µs hop + ~1 µs wire.
        assert!((440..500).contains(&t), "{t}");
    }

    #[test]
    fn bulk_transfer_is_bandwidth_bound() {
        let mut sim = Sim::new();
        let n = net(2);
        // 11.7 MB at 117 MB/s ≈ 100 ms ≫ hop latency.
        let at = send_and_time(&n, &mut sim, 0, 1, 11_700_000);
        sim.run_to_completion();
        let t = at.borrow().unwrap().as_micros();
        assert!((100_000..102_000).contains(&t), "{t}");
    }

    #[test]
    fn local_send_is_free() {
        let mut sim = Sim::new();
        let n = net(2);
        let at = send_and_time(&n, &mut sim, 1, 1, 1_000_000);
        sim.run_to_completion();
        assert_eq!(at.borrow().unwrap(), SimTime::ZERO);
        assert_eq!(n.stats(NodeId(1)).tx_messages, 0, "no wire traffic");
    }

    #[test]
    fn sender_egress_serializes() {
        let mut sim = Sim::new();
        let n = net(3);
        // Two large messages from node 0 to different receivers share the
        // single egress link: chunks interleave fairly, so both complete
        // around the combined serialization time (~200 ms), never earlier
        // than their own half.
        let a1 = send_and_time(&n, &mut sim, 0, 1, 11_700_000);
        let a2 = send_and_time(&n, &mut sim, 0, 2, 11_700_000);
        sim.run_to_completion();
        let t1 = a1.borrow().unwrap().as_micros();
        let t2 = a2.borrow().unwrap().as_micros();
        assert!(t1 > 150_000, "shared link, not solo speed: {t1}");
        assert!(
            (180_000..210_000).contains(&t2),
            "combined volume bound: {t2}"
        );
    }

    #[test]
    fn receiver_ingress_is_incast_bottleneck() {
        let mut sim = Sim::new();
        let n = net(3);
        // Two senders to one receiver: the shared ingress is the
        // bottleneck — neither can finish before the combined volume fits
        // through one link.
        let a1 = send_and_time(&n, &mut sim, 0, 2, 11_700_000);
        let a2 = send_and_time(&n, &mut sim, 1, 2, 11_700_000);
        sim.run_to_completion();
        let t1 = a1.borrow().unwrap().as_micros();
        let t2 = a2.borrow().unwrap().as_micros();
        assert!(t1 > 150_000, "incast shares ingress: {t1}");
        assert!(t2 >= 190_000, "incast serialized: {t2}");
    }

    #[test]
    fn full_duplex_does_not_serialize_opposite_directions() {
        let mut sim = Sim::new();
        let n = net(2);
        let a1 = send_and_time(&n, &mut sim, 0, 1, 11_700_000);
        let a2 = send_and_time(&n, &mut sim, 1, 0, 11_700_000);
        sim.run_to_completion();
        // Both complete in one transfer window.
        assert!(a1.borrow().unwrap().as_micros() < 102_000);
        assert!(a2.borrow().unwrap().as_micros() < 102_000);
    }

    #[test]
    fn stats_accumulate() {
        let mut sim = Sim::new();
        let n = net(2);
        send_and_time(&n, &mut sim, 0, 1, 1000);
        send_and_time(&n, &mut sim, 0, 1, 2000);
        sim.run_to_completion();
        let s0 = n.stats(NodeId(0));
        let s1 = n.stats(NodeId(1));
        assert_eq!(s0.tx_messages, 2);
        assert_eq!(s0.tx_bytes, 3000);
        assert_eq!(s1.rx_bytes, 3000);
        assert_eq!(s1.tx_messages, 0);
    }
}
