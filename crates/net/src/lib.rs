//! Simulated cluster interconnect for WattDB-RS.
//!
//! Substitutes the testbed's Gigabit Ethernet switch: per-node full-duplex
//! NIC queueing resources, a fixed switch hop latency, and request/response
//! helpers. Reproduces the two effects §3.3 isolates — per-call round-trip
//! amplification for unvectorized remote operators and bandwidth-limited
//! bulk segment copies.

pub mod network;
pub mod rpc;

pub use network::{Network, NicStats};
pub use rpc::round_trip;
