//! Request/response helpers over the network model.
//!
//! A remote volcano `next()` call (§3.3), a routing lookup at the master,
//! or a lock-release notification are all the same shape: request bytes one
//! way, server-side work, response bytes back. [`round_trip`] wires the
//! three stages through the simulator; the per-message CPU overhead from
//! the [`NetworkSpec`] is charged on top by the caller's CPU accounting.
//!
//! [`NetworkSpec`]: wattdb_common::NetworkSpec

use wattdb_common::{ByteSize, NodeId, SimDuration};
use wattdb_sim::{EventFn, Sim};

use crate::network::Network;

/// Issue a request of `req_bytes` from `client` to `server`, model
/// `server_time` of processing there, send `resp_bytes` back, then fire
/// `done` at the client.
///
/// `server_time` covers the server-side latency that is not separately
/// modelled through a resource. For CPU-accurate server work, use
/// [`Network::send`] directly and submit to the server's CPU resource in
/// the delivery continuation.
#[allow(clippy::too_many_arguments)]
pub fn round_trip(
    net: &Network,
    sim: &mut Sim,
    client: NodeId,
    server: NodeId,
    req_bytes: ByteSize,
    resp_bytes: ByteSize,
    server_time: SimDuration,
    done: EventFn,
) {
    // The closure chain needs the network at response time; Network lives
    // inside an Rc in the cluster, but the rpc helper only borrows it.
    // Capture what the response leg needs by value.
    let spec = *net.spec();
    let tx_back = net.tx_resource(server).clone();
    let rx_back = net.rx_resource(client).clone();
    net.send(
        sim,
        client,
        server,
        req_bytes,
        Box::new(move |sim| {
            sim.after(server_time, move |sim| {
                if client == server {
                    sim.after(SimDuration::ZERO, done);
                    return;
                }
                // Response leg: same dual-occupancy model as Network::send.
                use std::cell::Cell;
                use std::rc::Rc;
                use wattdb_sim::Resource;
                let wire = resp_bytes.transfer_time(spec.bandwidth);
                let hop = spec.hop_latency;
                let remaining = Rc::new(Cell::new(2u8));
                let done_cell = Rc::new(Cell::new(Some(done)));
                let mk = || {
                    let remaining = remaining.clone();
                    let done_cell = done_cell.clone();
                    Box::new(move |sim: &mut Sim| {
                        remaining.set(remaining.get() - 1);
                        if remaining.get() == 0 {
                            let d = done_cell.take().expect("once");
                            sim.after(hop, d);
                        }
                    }) as EventFn
                };
                Resource::submit(&tx_back, sim, wire, mk());
                Resource::submit(&rx_back, sim, wire, mk());
            });
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;
    use wattdb_common::{NetworkSpec, SimTime};

    #[test]
    fn round_trip_time_is_two_hops_plus_server() {
        let mut sim = Sim::new();
        let net = Network::new(2, NetworkSpec::default());
        let at: Rc<RefCell<Option<SimTime>>> = Rc::new(RefCell::new(None));
        let a = at.clone();
        round_trip(
            &net,
            &mut sim,
            NodeId(0),
            NodeId(1),
            ByteSize::bytes(64),
            ByteSize::bytes(1024),
            SimDuration::from_micros(100),
            Box::new(move |sim| *a.borrow_mut() = Some(sim.now())),
        );
        sim.run_to_completion();
        let t = at.borrow().unwrap().as_micros();
        // 2 × ~450 µs hops + 100 µs server + small wire times.
        assert!((1000..1100).contains(&t), "{t}");
    }

    #[test]
    fn local_round_trip_skips_the_wire() {
        let mut sim = Sim::new();
        let net = Network::new(2, NetworkSpec::default());
        let at: Rc<RefCell<Option<SimTime>>> = Rc::new(RefCell::new(None));
        let a = at.clone();
        round_trip(
            &net,
            &mut sim,
            NodeId(1),
            NodeId(1),
            ByteSize::bytes(64),
            ByteSize::bytes(1024),
            SimDuration::from_micros(100),
            Box::new(move |sim| *a.borrow_mut() = Some(sim.now())),
        );
        sim.run_to_completion();
        assert_eq!(at.borrow().unwrap(), SimTime::from_micros(100));
    }

    #[test]
    fn pipelined_round_trips_share_links() {
        let mut sim = Sim::new();
        let net = Network::new(2, NetworkSpec::default());
        let count: Rc<RefCell<u32>> = Rc::new(RefCell::new(0));
        for _ in 0..10 {
            let c = count.clone();
            round_trip(
                &net,
                &mut sim,
                NodeId(0),
                NodeId(1),
                ByteSize::bytes(64),
                ByteSize::bytes(64),
                SimDuration::ZERO,
                Box::new(move |_| *c.borrow_mut() += 1),
            );
        }
        sim.run_to_completion();
        assert_eq!(*count.borrow(), 10);
    }
}
